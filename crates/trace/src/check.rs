//! The preservation checker — regenerates the paper's Table 2.
//!
//! For a property `P` and meta-property relation `R`, the checker searches
//! for a violation of Equation 1: a pair `tr_below` (satisfying `P`) and
//! `tr_above` (related by `R`) with `¬P(tr_above)`. Search combines
//! exhaustive single-step rewriting with seeded random walks over traces
//! drawn from the property-specific generators in [`crate::gen`].
//!
//! A found counterexample is definitive (the cell is ✗, with a concrete
//! witness you can print). Absence of a counterexample is evidence for ✓ —
//! the testing analogue of the paper's Nuprl proofs, as recorded in
//! DESIGN.md. Cells whose value the paper's prose pins are labelled
//! [`Provenance::Paper`]; the checker's verdict is required (by this
//! crate's tests) to agree with every pinned cell.

use crate::gen::{
    seeded, AmoebaGen, NoReplayGen, PriorityGen, ReliableGen, TotalOrderGen, TraceGen, TrustedGen,
    UniversalGen, VsyncGen,
};
use crate::meta::{
    async_steps, async_swap_sites, compose_disjoint, delayable_steps, delayable_swap_sites,
    erase_random_subset, prefixes, send_extension, single_erasures, swap_walk, MetaKind,
};
use crate::props::{
    Amoeba, Confidentiality, Integrity, NoReplay, PrioritizedDelivery, Property, Reliability,
    TotalOrder, VirtualSynchrony,
};
use crate::{ProcessId, Trace};
use std::fmt;

/// Search budget for one cell.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Seed for the whole search (cells derive sub-seeds from it).
    pub seed: u64,
    /// Below-traces drawn per generator per size.
    pub traces_per_gen: usize,
    /// Event-count targets for generated below-traces.
    pub sizes: Vec<usize>,
    /// Random swap walks per below-trace (asynchrony/delayable).
    pub walks_per_trace: usize,
    /// Maximum steps per walk.
    pub walk_depth: usize,
    /// Send-extension draws per below-trace.
    pub extension_draws: usize,
    /// Random multi-message erasures per below-trace.
    pub erasure_draws: usize,
    /// Composition pairs sampled from the satisfying pool.
    pub compose_pairs: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FF_EE00,
            traces_per_gen: 60,
            sizes: vec![4, 8, 14, 24],
            walks_per_trace: 6,
            walk_depth: 8,
            extension_draws: 6,
            erasure_draws: 4,
            compose_pairs: 400,
        }
    }
}

impl CheckConfig {
    /// A reduced budget for quick tests.
    pub fn quick() -> Self {
        Self {
            traces_per_gen: 20,
            sizes: vec![4, 10, 18],
            walks_per_trace: 4,
            walk_depth: 6,
            extension_draws: 4,
            erasure_draws: 3,
            compose_pairs: 150,
            ..Self::default()
        }
    }
}

/// A concrete witness that a property is *not* preserved by a relation.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The trace (satisfying the property) the rewrite started from.
    pub below: Trace,
    /// For Composable: the second component trace.
    pub second_below: Option<Trace>,
    /// The related trace violating the property.
    pub above: Trace,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "below: {}", self.below)?;
        if let Some(b2) = &self.second_below {
            write!(f, "  +  {b2}")?;
        }
        write!(f, "  =>  above: {}", self.above)
    }
}

/// Outcome of checking one (property, meta-property) cell.
#[derive(Debug, Clone)]
pub struct CellVerdict {
    /// The meta-property checked.
    pub meta: MetaKind,
    /// `true` if no counterexample was found in the budget.
    pub preserved: bool,
    /// Number of (below, above) pairs examined.
    pub samples: usize,
    /// The witness, when `preserved` is false.
    pub counterexample: Option<Counterexample>,
}

/// Checks one cell: is `prop` preserved by `meta`'s relation?
///
/// `gens` supplies candidate below-traces; traces not satisfying `prop` are
/// used only after filtering. Deterministic for a given config.
pub fn check_cell(
    prop: &dyn Property,
    meta: MetaKind,
    gens: &[&dyn TraceGen],
    cfg: &CheckConfig,
) -> CellVerdict {
    let mut rng = seeded(cfg.seed ^ (meta as u64).wrapping_mul(0x9e37_79b9));
    let mut samples = 0usize;

    // Collect satisfying below-traces.
    let mut pool: Vec<Trace> = Vec::new();
    for g in gens {
        for &size in &cfg.sizes {
            for _ in 0..cfg.traces_per_gen {
                let tr = g.generate(&mut rng, size);
                if prop.holds(&tr) {
                    pool.push(tr);
                }
            }
        }
    }

    let check_above = |below: &Trace,
                       second: Option<&Trace>,
                       above: Trace,
                       samples: &mut usize|
     -> Option<Counterexample> {
        *samples += 1;
        if prop.holds(&above) {
            None
        } else {
            Some(Counterexample { below: below.clone(), second_below: second.cloned(), above })
        }
    };

    match meta {
        MetaKind::Safety => {
            for below in &pool {
                for above in prefixes(below) {
                    if let Some(cx) = check_above(below, None, above, &mut samples) {
                        return CellVerdict {
                            meta,
                            preserved: false,
                            samples,
                            counterexample: Some(cx),
                        };
                    }
                }
            }
        }
        MetaKind::Asynchrony | MetaKind::Delayable => {
            let (steps, sites): (fn(&Trace) -> Vec<Trace>, fn(&Trace) -> Vec<usize>) =
                if meta == MetaKind::Asynchrony {
                    (async_steps, async_swap_sites)
                } else {
                    (delayable_steps, delayable_swap_sites)
                };
            for below in &pool {
                for above in steps(below) {
                    if let Some(cx) = check_above(below, None, above, &mut samples) {
                        return CellVerdict {
                            meta,
                            preserved: false,
                            samples,
                            counterexample: Some(cx),
                        };
                    }
                }
                for _ in 0..cfg.walks_per_trace {
                    for above in swap_walk(below, sites, cfg.walk_depth, &mut rng) {
                        if let Some(cx) = check_above(below, None, above, &mut samples) {
                            return CellVerdict {
                                meta,
                                preserved: false,
                                samples,
                                counterexample: Some(cx),
                            };
                        }
                    }
                }
            }
        }
        MetaKind::SendEnabled => {
            for below in &pool {
                for draw in 0..cfg.extension_draws {
                    let above = send_extension(below, 1 + draw % 3, &mut rng);
                    if let Some(cx) = check_above(below, None, above, &mut samples) {
                        return CellVerdict {
                            meta,
                            preserved: false,
                            samples,
                            counterexample: Some(cx),
                        };
                    }
                }
            }
        }
        MetaKind::Memoryless => {
            for below in &pool {
                for above in single_erasures(below) {
                    if let Some(cx) = check_above(below, None, above, &mut samples) {
                        return CellVerdict {
                            meta,
                            preserved: false,
                            samples,
                            counterexample: Some(cx),
                        };
                    }
                }
                for _ in 0..cfg.erasure_draws {
                    let above = erase_random_subset(below, &mut rng);
                    if let Some(cx) = check_above(below, None, above, &mut samples) {
                        return CellVerdict {
                            meta,
                            preserved: false,
                            samples,
                            counterexample: Some(cx),
                        };
                    }
                }
            }
        }
        MetaKind::Composable => {
            if pool.len() >= 2 {
                for _ in 0..cfg.compose_pairs {
                    let i = rng.random_range(0..pool.len());
                    let j = rng.random_range(0..pool.len());
                    let above = compose_disjoint(&pool[i], &pool[j]);
                    // The relation requires both components to satisfy P —
                    // the pool guarantees it.
                    let (b1, b2) = (pool[i].clone(), pool[j].clone());
                    if let Some(cx) = check_above(&b1, Some(&b2), above, &mut samples) {
                        return CellVerdict {
                            meta,
                            preserved: false,
                            samples,
                            counterexample: Some(cx),
                        };
                    }
                }
            }
        }
    }

    CellVerdict { meta, preserved: true, samples, counterexample: None }
}

/// Where a Table-2 cell's expected value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The paper's prose states this cell explicitly (§5–§6).
    Paper,
    /// Derived by this checker; the published table's marks were lost in
    /// the source text re-flow.
    Derived,
}

/// One checked cell with its provenance.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The checker's verdict.
    pub verdict: CellVerdict,
    /// Whether the paper's prose pins this cell.
    pub provenance: Provenance,
    /// The prose-pinned value, when `provenance` is `Paper`.
    pub paper_value: Option<bool>,
}

impl Cell {
    /// True when a paper-pinned value disagrees with the checker.
    pub fn disagrees_with_paper(&self) -> bool {
        matches!(self.paper_value, Some(v) if v != self.verdict.preserved)
    }
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Property name.
    pub property: String,
    /// Cells in [`MetaKind::ALL`] order.
    pub cells: Vec<Cell>,
}

/// Cells pinned by the paper's prose: `(property, meta, value)`.
///
/// * §6.3: Total Order, Integrity, Confidentiality are in the preserved
///   class — all six meta-properties hold.
/// * §5.1: Reliability is not Safe.
/// * §5.2: Prioritized Delivery is not Asynchronous.
/// * §5.3/§5.4: Amoeba is neither Delayable nor Send Enabled.
/// * §6.1: No Replay is Memoryless; Virtual Synchrony is not.
/// * §6.2: No Replay is not Composable.
pub const PAPER_PINNED: &[(&str, MetaKind, bool)] = &[
    ("Total Order", MetaKind::Safety, true),
    ("Total Order", MetaKind::Asynchrony, true),
    ("Total Order", MetaKind::Delayable, true),
    ("Total Order", MetaKind::SendEnabled, true),
    ("Total Order", MetaKind::Memoryless, true),
    ("Total Order", MetaKind::Composable, true),
    ("Integrity", MetaKind::Safety, true),
    ("Integrity", MetaKind::Asynchrony, true),
    ("Integrity", MetaKind::Delayable, true),
    ("Integrity", MetaKind::SendEnabled, true),
    ("Integrity", MetaKind::Memoryless, true),
    ("Integrity", MetaKind::Composable, true),
    ("Confidentiality", MetaKind::Safety, true),
    ("Confidentiality", MetaKind::Asynchrony, true),
    ("Confidentiality", MetaKind::Delayable, true),
    ("Confidentiality", MetaKind::SendEnabled, true),
    ("Confidentiality", MetaKind::Memoryless, true),
    ("Confidentiality", MetaKind::Composable, true),
    ("Reliability", MetaKind::Safety, false),
    ("Prioritized Delivery", MetaKind::Asynchrony, false),
    ("Amoeba", MetaKind::Delayable, false),
    ("Amoeba", MetaKind::SendEnabled, false),
    ("No Replay", MetaKind::Memoryless, true),
    ("No Replay", MetaKind::Composable, false),
    ("Virtual Synchrony", MetaKind::Memoryless, false),
];

fn pinned(property: &str, meta: MetaKind) -> Option<bool> {
    PAPER_PINNED.iter().find(|(p, m, _)| *p == property && *m == meta).map(|&(_, _, v)| v)
}

/// The standard (property, generators) pairing used to regenerate Table 2
/// over a group of `n` processes.
pub fn property_gens(n: u16) -> Vec<(Box<dyn Property>, Vec<Box<dyn TraceGen>>)> {
    let group: Vec<ProcessId> = (0..n).map(ProcessId).collect();
    let trusted: Vec<ProcessId> = (0..n).filter(|i| i % 2 == 0).map(ProcessId).collect();
    let uni = || -> Box<dyn TraceGen> { Box::new(UniversalGen { procs: n }) };
    vec![
        (
            Box::new(Reliability::new(group.clone())),
            vec![Box::new(ReliableGen { group: group.clone() }), uni()],
        ),
        (Box::new(TotalOrder), vec![Box::new(TotalOrderGen { group: group.clone() }), uni()]),
        (
            Box::new(Integrity::new(trusted.clone())),
            vec![
                Box::new(TrustedGen {
                    trusted: trusted.clone(),
                    everyone: group.clone(),
                    confidential: false,
                }),
                uni(),
            ],
        ),
        (
            Box::new(Confidentiality::new(trusted.clone())),
            vec![
                Box::new(TrustedGen {
                    trusted: trusted.clone(),
                    everyone: group.clone(),
                    confidential: true,
                }),
                uni(),
            ],
        ),
        (Box::new(NoReplay), vec![Box::new(NoReplayGen { procs: n }), uni()]),
        (
            Box::new(PrioritizedDelivery::new(ProcessId(0))),
            vec![Box::new(PriorityGen { master: ProcessId(0), group: group.clone() }), uni()],
        ),
        (Box::new(Amoeba), vec![Box::new(AmoebaGen { procs: n }), uni()]),
        (
            Box::new(VirtualSynchrony::new(group.clone())),
            vec![Box::new(VsyncGen { initial: group })],
        ),
    ]
}

/// Regenerates Table 2: checks all eight properties against all six
/// meta-properties.
pub fn table2(n: u16, cfg: &CheckConfig) -> Vec<Table2Row> {
    property_gens(n).into_iter().map(|pg| build_row(pg, cfg)).collect()
}

/// Number of rows [`table2`] produces for a group of `n` processes.
///
/// Lets callers enumerate row indices for [`table2_row`] without building
/// the generators twice.
pub fn table2_len(n: u16) -> usize {
    property_gens(n).len()
}

/// Computes a single row of [`table2`] — `table2(n, cfg)[row]` — or `None`
/// if `row` is out of range.
///
/// The property and its generators are rebuilt from scratch inside the
/// call (they are not `Send`), so independent rows can be computed on
/// separate worker threads and reassembled in index order.
pub fn table2_row(n: u16, row: usize, cfg: &CheckConfig) -> Option<Table2Row> {
    property_gens(n).into_iter().nth(row).map(|pg| build_row(pg, cfg))
}

fn build_row(
    (prop, gens): (Box<dyn Property>, Vec<Box<dyn TraceGen>>),
    cfg: &CheckConfig,
) -> Table2Row {
    let gen_refs: Vec<&dyn TraceGen> = gens.iter().map(|g| g.as_ref()).collect();
    let cells = MetaKind::ALL
        .iter()
        .map(|&meta| {
            let verdict = check_cell(prop.as_ref(), meta, &gen_refs, cfg);
            let paper_value = pinned(prop.name(), meta);
            Cell {
                verdict,
                provenance: if paper_value.is_some() {
                    Provenance::Paper
                } else {
                    Provenance::Derived
                },
                paper_value,
            }
        })
        .collect();
    Table2Row { property: prop.name().to_owned(), cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ReliableGen;

    #[test]
    fn reliability_is_not_safe_with_witness() {
        let group: Vec<ProcessId> = (0..3).map(ProcessId).collect();
        let prop = Reliability::new(group.clone());
        let g = ReliableGen { group };
        let v = check_cell(&prop, MetaKind::Safety, &[&g], &CheckConfig::quick());
        assert!(!v.preserved);
        let cx = v.counterexample.expect("must carry a witness");
        assert!(prop.holds(&cx.below));
        assert!(!prop.holds(&cx.above));
    }

    #[test]
    fn total_order_is_asynchronous() {
        let group: Vec<ProcessId> = (0..3).map(ProcessId).collect();
        let g = TotalOrderGen { group };
        let v = check_cell(&TotalOrder, MetaKind::Asynchrony, &[&g], &CheckConfig::quick());
        assert!(v.preserved, "spurious counterexample: {:?}", v.counterexample);
        assert!(v.samples > 100);
    }

    #[test]
    fn amoeba_is_not_delayable() {
        let g = AmoebaGen { procs: 3 };
        let v = check_cell(&Amoeba, MetaKind::Delayable, &[&g], &CheckConfig::quick());
        assert!(!v.preserved);
    }

    #[test]
    fn no_replay_is_not_composable() {
        let g = NoReplayGen { procs: 3 };
        let v = check_cell(&NoReplay, MetaKind::Composable, &[&g], &CheckConfig::quick());
        assert!(!v.preserved);
        let cx = v.counterexample.unwrap();
        assert!(cx.second_below.is_some());
    }

    #[test]
    fn pinned_lookup() {
        assert_eq!(pinned("Reliability", MetaKind::Safety), Some(false));
        assert_eq!(pinned("Reliability", MetaKind::Asynchrony), None);
        assert_eq!(pinned("No Replay", MetaKind::Memoryless), Some(true));
    }

    #[test]
    fn counterexample_display_is_readable() {
        let cx = Counterexample {
            below: Trace::new(),
            second_below: Some(Trace::new()),
            above: Trace::new(),
        };
        let s = cx.to_string();
        assert!(s.contains("below") && s.contains("above"));
    }
}
