use crate::{Event, Message, MsgId, ProcessId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An ordered sequence of [`Event`]s — the paper's central object (§3).
///
/// A trace is *well-formed* when it contains no duplicate `Send` events;
/// constructors uphold this in debug builds and [`Trace::is_well_formed`]
/// checks it explicitly (the meta-property rewrite relations are tested to
/// preserve it).
///
/// # Examples
///
/// ```
/// use ps_trace::{Event, Message, ProcessId, Trace};
///
/// let m = Message::with_tag(ProcessId(0), 1, 9);
/// let mut tr = Trace::new();
/// tr.push(Event::send(m.clone()));
/// tr.push(Event::deliver(ProcessId(1), m.clone()));
/// assert_eq!(tr.len(), 2);
/// assert_eq!(tr.deliveries_of(m.id).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self { events: Vec::new() }
    }

    /// Creates a trace from a ready-made event sequence.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the sequence contains duplicate sends.
    pub fn from_events(events: Vec<Event>) -> Self {
        let tr = Self { events };
        debug_assert!(tr.is_well_formed(), "duplicate Send events in trace");
        tr
    }

    /// Appends an event.
    pub fn push(&mut self, ev: Event) {
        self.events.push(ev);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The underlying events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over events in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// True when no message is sent twice (the paper's well-formedness
    /// condition on traces).
    pub fn is_well_formed(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.events.iter().filter(|e| e.is_send()).all(|e| seen.insert(e.message().id))
    }

    /// The prefix consisting of the first `n` events.
    pub fn prefix(&self, n: usize) -> Trace {
        Trace { events: self.events[..n.min(self.events.len())].to_vec() }
    }

    /// Concatenates two traces (used by the Composable relation).
    pub fn concat(&self, other: &Trace) -> Trace {
        let mut events = self.events.clone();
        events.extend(other.events.iter().cloned());
        Trace { events }
    }

    /// All processes that appear in the trace (as sender or deliverer).
    pub fn processes(&self) -> BTreeSet<ProcessId> {
        self.events.iter().map(Event::process).collect()
    }

    /// Identities of all messages sent in the trace.
    pub fn sent_ids(&self) -> BTreeSet<MsgId> {
        self.events.iter().filter(|e| e.is_send()).map(|e| e.message().id).collect()
    }

    /// Identities of every message that appears in any event.
    pub fn message_ids(&self) -> BTreeSet<MsgId> {
        self.events.iter().map(|e| e.message().id).collect()
    }

    /// The send event for `id`, if present.
    pub fn send_of(&self, id: MsgId) -> Option<&Message> {
        self.events.iter().find_map(|e| match e {
            Event::Send(m) if m.id == id => Some(m),
            _ => None,
        })
    }

    /// All deliveries of message `id`, in trace order.
    pub fn deliveries_of(&self, id: MsgId) -> impl Iterator<Item = ProcessId> + '_ {
        self.events.iter().filter_map(move |e| match e {
            Event::Deliver(p, m) if m.id == id => Some(*p),
            _ => None,
        })
    }

    /// The subsequence of messages delivered by process `p`, in order.
    pub fn delivered_by(&self, p: ProcessId) -> Vec<&Message> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Deliver(q, m) if *q == p => Some(m),
                _ => None,
            })
            .collect()
    }

    /// The subsequence of events belonging to process `p` (its local view
    /// of the execution).
    pub fn local_events(&self, p: ProcessId) -> Vec<&Event> {
        self.events.iter().filter(|e| e.process() == p).collect()
    }

    /// Removes every event pertaining to any message in `ids` (the
    /// Memoryless relation's erasure).
    pub fn erase_messages(&self, ids: &BTreeSet<MsgId>) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .filter(|e| !ids.contains(&e.message().id))
                .cloned()
                .collect(),
        }
    }

    /// Per-sender count of sends — the vector the switching protocol's
    /// SWITCH message carries.
    pub fn send_counts(&self) -> BTreeMap<ProcessId, u64> {
        let mut counts = BTreeMap::new();
        for e in &self.events {
            if e.is_send() {
                *counts.entry(e.process()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Swaps events `i` and `i + 1`, returning the rewritten trace.
    ///
    /// # Panics
    ///
    /// Panics if `i + 1` is out of bounds.
    pub fn swap_adjacent(&self, i: usize) -> Trace {
        let mut events = self.events.clone();
        events.swap(i, i + 1);
        Trace { events }
    }

    /// True if swapping events `i` and `i+1` would move a delivery of some
    /// message before that message's send — the causal inversion the
    /// rewrite relations must never perform.
    pub fn swap_inverts_causality(&self, i: usize) -> bool {
        match (&self.events[i], &self.events[i + 1]) {
            (Event::Send(m), Event::Deliver(_, m2)) => m.id == m2.id,
            _ => false,
        }
    }
}

impl fmt::Display for Trace {
    /// Renders as `[S(p0#1) D(p1:p0#1) …]` — the form counterexamples are
    /// printed in.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace { events: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Convenience constructors for tests and generators.
impl Trace {
    /// Builds a trace in which each listed message is sent and then
    /// delivered to every process in `group`, message by message.
    pub fn broadcast_all(group: &[ProcessId], msgs: &[Message]) -> Trace {
        let mut tr = Trace::new();
        for m in msgs {
            tr.push(Event::send(m.clone()));
            for &p in group {
                tr.push(Event::deliver(p, m.clone()));
            }
        }
        tr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn msg(s: u16, seq: u64) -> Message {
        Message::with_tag(p(s), seq, (s as u8) ^ (seq as u8))
    }

    fn sample() -> Trace {
        let a = msg(0, 1);
        let b = msg(1, 1);
        Trace::from_events(vec![
            Event::send(a.clone()),
            Event::deliver(p(0), a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(1), a.clone()),
            Event::deliver(p(0), b.clone()),
            Event::deliver(p(1), b.clone()),
        ])
    }

    #[test]
    fn well_formedness_rejects_duplicate_sends() {
        let a = msg(0, 1);
        let tr = Trace { events: vec![Event::send(a.clone()), Event::send(a)] };
        assert!(!tr.is_well_formed());
        assert!(sample().is_well_formed());
    }

    #[test]
    fn prefix_truncates() {
        let tr = sample();
        assert_eq!(tr.prefix(2).len(), 2);
        assert_eq!(tr.prefix(100).len(), tr.len());
        assert!(tr.prefix(0).is_empty());
    }

    #[test]
    fn concat_appends() {
        let tr = sample();
        let c = tr.concat(&tr.prefix(0));
        assert_eq!(c, tr);
        let d = tr.prefix(1).concat(&tr.prefix(1));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn queries() {
        let tr = sample();
        assert_eq!(tr.processes().len(), 2);
        assert_eq!(tr.sent_ids().len(), 2);
        let a_id = MsgId::new(p(0), 1);
        assert_eq!(tr.deliveries_of(a_id).collect::<Vec<_>>(), vec![p(0), p(1)]);
        assert_eq!(tr.delivered_by(p(0)).len(), 2);
        assert!(tr.send_of(a_id).is_some());
        assert!(tr.send_of(MsgId::new(p(5), 9)).is_none());
    }

    #[test]
    fn local_events_project_by_process() {
        let tr = sample();
        let local0 = tr.local_events(p(0));
        // p0: send a, deliver a, deliver b.
        assert_eq!(local0.len(), 3);
        assert!(local0.iter().all(|e| e.process() == p(0)));
    }

    #[test]
    fn erase_messages_removes_all_events_of_message() {
        let tr = sample();
        let mut ids = BTreeSet::new();
        ids.insert(MsgId::new(p(0), 1));
        let erased = tr.erase_messages(&ids);
        assert_eq!(erased.len(), 3);
        assert!(erased.iter().all(|e| e.message().id != MsgId::new(p(0), 1)));
    }

    #[test]
    fn send_counts_per_process() {
        let tr = sample();
        let counts = tr.send_counts();
        assert_eq!(counts[&p(0)], 1);
        assert_eq!(counts[&p(1)], 1);
    }

    #[test]
    fn swap_detects_causal_inversion() {
        let tr = sample();
        // Index 0: Send(a), index 1: Deliver(p0:a) → inversion.
        assert!(tr.swap_inverts_causality(0));
        // Index 2: Send(b), index 3: Deliver(p1:a) → different messages, fine.
        assert!(!tr.swap_inverts_causality(2));
        let swapped = tr.swap_adjacent(2);
        assert_eq!(swapped.events()[2], tr.events()[3]);
        assert_eq!(swapped.events()[3], tr.events()[2]);
    }

    #[test]
    fn broadcast_all_builder() {
        let group = [p(0), p(1), p(2)];
        let msgs = [msg(0, 1), msg(1, 1)];
        let tr = Trace::broadcast_all(&group, &msgs);
        assert_eq!(tr.len(), 2 * (1 + 3));
        assert!(tr.is_well_formed());
    }

    #[test]
    fn display_shows_events() {
        let tr = sample().prefix(2);
        assert_eq!(tr.to_string(), "[S(p0#1) D(p0:p0#1)]");
    }
}
