use crate::props::Property;
use crate::{Event, MsgId, ProcessId, Trace, ViewInfo};
use std::collections::{BTreeMap, BTreeSet};

/// **Virtual Synchrony** (Table 1): a process only delivers messages from
/// processes in some common view.
///
/// Views are disseminated as distinguished view-change *messages* (see
/// [`crate::Message::view_change`]), so the trace model stays pure
/// Send/Deliver. The predicate checks, per the classic virtual synchrony
/// contract:
///
/// 1. **Monotone installation** — each process installs views with strictly
///    increasing view numbers, and only views that include it.
/// 2. **View agreement** — any two processes installing view number `v`
///    install the same membership.
/// 3. **Delivery in view** — every data message is delivered while both the
///    deliverer and the message's sender belong to the deliverer's current
///    view.
/// 4. **Synchrony** — two processes that move from view `v` to the same
///    next view deliver the same *set* of data messages while in `v`.
///    (Epochs still open at the end of the trace are not compared.)
///
/// Virtual Synchrony is **not memoryless** (§6.1): erase a view-change
/// message (the Memoryless relation erases all events of a chosen message)
/// and a joining member's deliveries suddenly happen under an old view that
/// excludes it — condition 3 fails. This is the formal shadow of the
/// operational fact the paper cites: switching between two virtually
/// synchronous protocols does not yield a virtually synchronous execution.
/// The paper's future-work remark — that *view-synchronous* switching could
/// support this property — is implemented in `ps-core` as the
/// view-based switch variant.
#[derive(Debug, Clone)]
pub struct VirtualSynchrony {
    initial: Vec<ProcessId>,
}

impl VirtualSynchrony {
    /// Creates the property; `initial` is view 0's membership.
    pub fn new(initial: impl IntoIterator<Item = ProcessId>) -> Self {
        Self { initial: initial.into_iter().collect() }
    }
}

impl Property for VirtualSynchrony {
    fn name(&self) -> &'static str {
        "Virtual Synchrony"
    }

    fn description(&self) -> &'static str {
        "a process only delivers messages from processes in some common view"
    }

    fn holds(&self, tr: &Trace) -> bool {
        let initial = ViewInfo { view_no: 0, members: self.initial.clone() };

        // Per process: current view, plus the data messages delivered in
        // the current (open) epoch.
        struct Cursor {
            view: ViewInfo,
            open_epoch: BTreeSet<MsgId>,
        }
        let mut cursors: BTreeMap<ProcessId, Cursor> = BTreeMap::new();
        // Completed epochs: (from_view, to_view) → per-process delivered set.
        let mut epochs: BTreeMap<(u64, u64), Vec<BTreeSet<MsgId>>> = BTreeMap::new();
        // View agreement: view_no → members.
        let mut view_members: BTreeMap<u64, Vec<ProcessId>> = BTreeMap::new();

        for e in tr.iter() {
            let Event::Deliver(p, m) = e else { continue };
            let cursor = cursors
                .entry(*p)
                .or_insert_with(|| Cursor { view: initial.clone(), open_epoch: BTreeSet::new() });
            if let Some(v) = m.as_view_change() {
                // 1. Monotone installation of views containing the installer.
                if v.view_no <= cursor.view.view_no || !v.members.contains(p) {
                    return false;
                }
                // 2. View agreement across installers.
                if let Some(members) = view_members.get(&v.view_no) {
                    if *members != v.members {
                        return false;
                    }
                } else {
                    view_members.insert(v.view_no, v.members.clone());
                }
                // Close the epoch. Synchrony only constrains *survivors* —
                // processes that were members of the closing view; a
                // joiner's pre-membership epoch is vacuous.
                let was_member = cursor.view.members.contains(p);
                let closed = std::mem::take(&mut cursor.open_epoch);
                if was_member {
                    let key = (cursor.view.view_no, v.view_no);
                    epochs.entry(key).or_default().push(closed);
                }
                cursor.view = v;
            } else {
                // 3. Delivery in view.
                if !cursor.view.members.contains(p) || !cursor.view.members.contains(&m.id.sender) {
                    return false;
                }
                cursor.open_epoch.insert(m.id);
            }
        }

        // 4. Synchrony on completed epochs.
        epochs.values().all(|sets| sets.windows(2).all(|w| w[0] == w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn vs() -> VirtualSynchrony {
        VirtualSynchrony::new([p(0), p(1)])
    }

    #[test]
    fn plain_epoch_holds() {
        let m = Message::with_tag(p(0), 1, 1);
        let tr = Trace::from_events(vec![
            Event::send(m.clone()),
            Event::deliver(p(0), m.clone()),
            Event::deliver(p(1), m),
        ]);
        assert!(vs().holds(&tr));
    }

    #[test]
    fn sender_outside_view_fails() {
        let m = Message::with_tag(p(5), 1, 1);
        let tr = Trace::from_events(vec![Event::send(m.clone()), Event::deliver(p(0), m)]);
        assert!(!vs().holds(&tr));
    }

    #[test]
    fn join_through_view_change_holds() {
        let v1 = Message::view_change(p(0), 1, 1, vec![p(0), p(1), p(2)]);
        let c = Message::with_tag(p(2), 1, 3);
        let tr = Trace::from_events(vec![
            Event::send(v1.clone()),
            Event::deliver(p(0), v1.clone()),
            Event::deliver(p(1), v1.clone()),
            Event::deliver(p(2), v1),
            Event::send(c.clone()),
            Event::deliver(p(0), c.clone()),
            Event::deliver(p(1), c.clone()),
            Event::deliver(p(2), c),
        ]);
        assert!(vs().holds(&tr));
    }

    #[test]
    fn erasing_the_view_breaks_it() {
        // The memoryless counterexample: without the view change, p2's
        // deliveries happen under a view that excludes it.
        let v1 = Message::view_change(p(0), 1, 1, vec![p(0), p(1), p(2)]);
        let c = Message::with_tag(p(2), 1, 3);
        let tr = Trace::from_events(vec![
            Event::send(v1.clone()),
            Event::deliver(p(0), v1.clone()),
            Event::deliver(p(1), v1.clone()),
            Event::deliver(p(2), v1.clone()),
            Event::send(c.clone()),
            Event::deliver(p(0), c.clone()),
            Event::deliver(p(2), c),
        ]);
        assert!(vs().holds(&tr));
        let mut erase = BTreeSet::new();
        erase.insert(v1.id);
        assert!(!vs().holds(&tr.erase_messages(&erase)));
    }

    #[test]
    fn divergent_epoch_sets_fail() {
        // p0 and p1 both move from view 0 to view 1, but p1 missed message m.
        let m = Message::with_tag(p(0), 1, 1);
        let v1 = Message::view_change(p(0), 2, 1, vec![p(0), p(1)]);
        let tr = Trace::from_events(vec![
            Event::send(m.clone()),
            Event::deliver(p(0), m),
            Event::send(v1.clone()),
            Event::deliver(p(0), v1.clone()),
            Event::deliver(p(1), v1),
        ]);
        assert!(!vs().holds(&tr));
    }

    #[test]
    fn open_epochs_are_not_compared() {
        // p0 has moved to view 1; p1 is still in view 0 with a different
        // delivered set — allowed, its epoch is still open.
        let m = Message::with_tag(p(0), 1, 1);
        let v1 = Message::view_change(p(0), 2, 1, vec![p(0), p(1)]);
        let tr = Trace::from_events(vec![
            Event::send(m.clone()),
            Event::deliver(p(0), m),
            Event::send(v1.clone()),
            Event::deliver(p(0), v1),
        ]);
        assert!(vs().holds(&tr));
    }

    #[test]
    fn view_number_must_increase() {
        let v1 = Message::view_change(p(0), 1, 1, vec![p(0), p(1)]);
        let v1b = Message::view_change(p(1), 1, 1, vec![p(0), p(1)]);
        let tr = Trace::from_events(vec![
            Event::send(v1.clone()),
            Event::send(v1b.clone()),
            Event::deliver(p(0), v1),
            Event::deliver(p(0), v1b),
        ]);
        assert!(!vs().holds(&tr));
    }

    #[test]
    fn conflicting_view_memberships_fail() {
        let v1 = Message::view_change(p(0), 1, 1, vec![p(0), p(1)]);
        let v1_alt = Message::view_change(p(1), 1, 1, vec![p(1)]);
        let tr = Trace::from_events(vec![
            Event::send(v1.clone()),
            Event::send(v1_alt.clone()),
            Event::deliver(p(0), v1),
            Event::deliver(p(1), v1_alt),
        ]);
        assert!(!vs().holds(&tr));
    }

    #[test]
    fn installer_must_be_member() {
        let v1 = Message::view_change(p(0), 1, 1, vec![p(0)]);
        let tr = Trace::from_events(vec![Event::send(v1.clone()), Event::deliver(p(1), v1)]);
        assert!(!vs().holds(&tr));
    }
}
