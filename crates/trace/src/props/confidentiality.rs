use crate::props::Property;
use crate::{Event, ProcessId, Trace};
use std::collections::BTreeSet;

/// **Confidentiality** (Table 1): non-trusted processes cannot see messages
/// from trusted processes.
///
/// A pure per-event predicate — it constrains *which* deliveries may occur,
/// never their order or multiplicity — so it trivially satisfies all six
/// meta-properties and is preserved by switching (the paper's "increase
/// security at run-time" use case relies on this).
#[derive(Debug, Clone)]
pub struct Confidentiality {
    trusted: BTreeSet<ProcessId>,
}

impl Confidentiality {
    /// Creates the property with the given trusted set.
    pub fn new(trusted: impl IntoIterator<Item = ProcessId>) -> Self {
        Self { trusted: trusted.into_iter().collect() }
    }

    /// Whether `p` is trusted.
    pub fn is_trusted(&self, p: ProcessId) -> bool {
        self.trusted.contains(&p)
    }
}

impl Property for Confidentiality {
    fn name(&self) -> &'static str {
        "Confidentiality"
    }

    fn description(&self) -> &'static str {
        "non-trusted processes cannot see messages from trusted processes"
    }

    fn holds(&self, tr: &Trace) -> bool {
        tr.iter().all(|e| match e {
            Event::Deliver(p, m) => {
                !(self.trusted.contains(&m.id.sender) && !self.trusted.contains(p))
            }
            Event::Send(_) => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn trusted_to_trusted_allowed() {
        let m = Message::with_tag(p(0), 1, 1);
        let tr = Trace::from_events(vec![Event::send(m.clone()), Event::deliver(p(1), m)]);
        assert!(Confidentiality::new([p(0), p(1)]).holds(&tr));
    }

    #[test]
    fn trusted_to_untrusted_leaks() {
        let m = Message::with_tag(p(0), 1, 1);
        let tr = Trace::from_events(vec![Event::send(m.clone()), Event::deliver(p(2), m)]);
        assert!(!Confidentiality::new([p(0), p(1)]).holds(&tr));
    }

    #[test]
    fn untrusted_traffic_unconstrained() {
        // Untrusted senders may be seen by anyone.
        let m = Message::with_tag(p(2), 1, 1);
        let tr = Trace::from_events(vec![
            Event::send(m.clone()),
            Event::deliver(p(0), m.clone()),
            Event::deliver(p(2), m),
        ]);
        assert!(Confidentiality::new([p(0), p(1)]).holds(&tr));
    }

    #[test]
    fn untrusted_to_trusted_allowed() {
        let m = Message::with_tag(p(2), 1, 1);
        let tr = Trace::from_events(vec![Event::send(m.clone()), Event::deliver(p(0), m)]);
        assert!(Confidentiality::new([p(0)]).holds(&tr));
    }
}
