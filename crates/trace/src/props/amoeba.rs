use crate::props::Property;
use crate::{Event, Trace};
use std::collections::HashMap;

/// **Amoeba** (Table 1): a process is blocked from sending while it is
/// awaiting its own messages.
///
/// Named for the Amoeba distributed OS's broadcast protocol (Kaashoek et
/// al.), where a sender waits to see its own message come back from the
/// sequencer before issuing the next one. Formally: between two consecutive
/// sends by the same process, that process must deliver the earlier of the
/// two messages.
///
/// The property relates a process's *send* stream to its *deliver* stream,
/// so it is neither Delayable (§5.3) — a layer may present the self-delivery
/// after the next send — nor Send Enabled (§5.4) — appending a send while a
/// self-delivery is outstanding violates it. The paper confirms it is not
/// preserved by switching.
#[derive(Debug, Clone, Copy, Default)]
pub struct Amoeba;

impl Property for Amoeba {
    fn name(&self) -> &'static str {
        "Amoeba"
    }

    fn description(&self) -> &'static str {
        "a process is blocked from sending while it is awaiting its own messages"
    }

    fn holds(&self, tr: &Trace) -> bool {
        // Per process: the id of the message it is still awaiting, if any.
        let mut awaiting = HashMap::new();
        for e in tr.iter() {
            match e {
                Event::Send(m) => {
                    if awaiting.contains_key(&m.id.sender) {
                        return false;
                    }
                    awaiting.insert(m.id.sender, m.id);
                }
                Event::Deliver(p, m) => {
                    if awaiting.get(p) == Some(&m.id) {
                        awaiting.remove(p);
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, ProcessId};

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn send_wait_send_holds() {
        let a = Message::with_tag(p(0), 1, 0);
        let b = Message::with_tag(p(0), 2, 1);
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::deliver(p(0), a),
            Event::send(b.clone()),
            Event::deliver(p(0), b),
        ]);
        assert!(Amoeba.holds(&tr));
    }

    #[test]
    fn back_to_back_sends_fail() {
        let a = Message::with_tag(p(0), 1, 0);
        let b = Message::with_tag(p(0), 2, 1);
        let tr = Trace::from_events(vec![Event::send(a), Event::send(b)]);
        assert!(!Amoeba.holds(&tr));
    }

    #[test]
    fn other_processes_interleave_freely() {
        let a = Message::with_tag(p(0), 1, 0);
        let b = Message::with_tag(p(1), 1, 1);
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(0), a),
            Event::deliver(p(1), b),
        ]);
        assert!(Amoeba.holds(&tr));
    }

    #[test]
    fn outstanding_wait_at_end_is_fine() {
        // Awaiting at end of trace without further sends: no violation.
        let a = Message::with_tag(p(0), 1, 0);
        let tr = Trace::from_events(vec![Event::send(a)]);
        assert!(Amoeba.holds(&tr));
    }

    #[test]
    fn delayable_swap_breaks_it() {
        // §5.3, concretely: swap the adjacent self-delivery and next send.
        let a = Message::with_tag(p(0), 1, 0);
        let b = Message::with_tag(p(0), 2, 1);
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::deliver(p(0), a),
            Event::send(b),
        ]);
        assert!(Amoeba.holds(&tr));
        let swapped = tr.swap_adjacent(1); // deliver/send, same process, different msgs
        assert!(!Amoeba.holds(&swapped));
    }

    #[test]
    fn delivery_of_someone_elses_message_does_not_release() {
        let a = Message::with_tag(p(0), 1, 0);
        let x = Message::with_tag(p(1), 1, 2);
        let b = Message::with_tag(p(0), 2, 1);
        let tr = Trace::from_events(vec![
            Event::send(a),
            Event::send(x.clone()),
            Event::deliver(p(0), x),
            Event::send(b),
        ]);
        assert!(!Amoeba.holds(&tr));
    }
}
