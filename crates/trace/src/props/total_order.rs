use crate::props::Property;
use crate::{MsgId, Trace};
use std::collections::HashMap;

/// **Total Order** (Table 1): processes that deliver the same two messages
/// deliver them in the same order.
///
/// The pairwise formulation makes the predicate local to each process's
/// delivery subsequence, which is why total order is preserved under the
/// asynchrony and delayable rewrites — no cross-process ordering is
/// constrained. The paper's §7 evaluates two implementations of this
/// property (a fixed sequencer and a rotating token) and switches between
/// them.
#[derive(Debug, Clone, Copy, Default)]
pub struct TotalOrder;

impl Property for TotalOrder {
    fn name(&self) -> &'static str {
        "Total Order"
    }

    fn description(&self) -> &'static str {
        "processes that deliver the same two messages deliver them in the same order"
    }

    fn holds(&self, tr: &Trace) -> bool {
        // For each process, the position of each delivered message in its
        // local delivery sequence (first delivery counts; duplicates are
        // No-Replay's concern).
        let mut per_process: HashMap<crate::ProcessId, HashMap<MsgId, usize>> = HashMap::new();
        for e in tr.iter() {
            if let crate::Event::Deliver(p, m) = e {
                let seq = per_process.entry(*p).or_default();
                let next = seq.len();
                seq.entry(m.id).or_insert(next);
            }
        }
        let procs: Vec<_> = per_process.keys().copied().collect();
        for (i, &p) in procs.iter().enumerate() {
            for &q in &procs[i + 1..] {
                let sp = &per_process[&p];
                let sq = &per_process[&q];
                // Every pair of messages delivered by both must agree.
                let common: Vec<MsgId> =
                    sp.keys().filter(|id| sq.contains_key(id)).copied().collect();
                for (a_idx, &a) in common.iter().enumerate() {
                    for &b in &common[a_idx + 1..] {
                        let p_order = sp[&a].cmp(&sp[&b]);
                        let q_order = sq[&a].cmp(&sq[&b]);
                        if p_order != q_order {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Message, ProcessId};

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn m(s: u16, seq: u64) -> Message {
        Message::with_tag(p(s), seq, 0)
    }

    #[test]
    fn consistent_orders_hold() {
        let (a, b, c) = (m(0, 1), m(1, 1), m(2, 1));
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::send(c.clone()),
            Event::deliver(p(0), a.clone()),
            Event::deliver(p(0), b.clone()),
            Event::deliver(p(1), a.clone()),
            Event::deliver(p(0), c.clone()),
            Event::deliver(p(1), b.clone()),
            Event::deliver(p(1), c.clone()),
        ]);
        assert!(TotalOrder.holds(&tr));
    }

    #[test]
    fn gaps_are_allowed() {
        // q skips message b entirely; only common pairs constrain.
        let (a, b, c) = (m(0, 1), m(1, 1), m(2, 1));
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::send(c.clone()),
            Event::deliver(p(0), a.clone()),
            Event::deliver(p(0), b.clone()),
            Event::deliver(p(0), c.clone()),
            Event::deliver(p(1), a.clone()),
            Event::deliver(p(1), c.clone()),
        ]);
        assert!(TotalOrder.holds(&tr));
    }

    #[test]
    fn inversion_detected() {
        let (a, b) = (m(0, 1), m(1, 1));
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(0), a.clone()),
            Event::deliver(p(0), b.clone()),
            Event::deliver(p(1), b.clone()),
            Event::deliver(p(1), a.clone()),
        ]);
        assert!(!TotalOrder.holds(&tr));
    }

    #[test]
    fn duplicate_delivery_uses_first_position() {
        let (a, b) = (m(0, 1), m(1, 1));
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(0), a.clone()),
            Event::deliver(p(0), b.clone()),
            Event::deliver(p(0), a.clone()), // duplicate after b
            Event::deliver(p(1), a.clone()),
            Event::deliver(p(1), b.clone()),
        ]);
        assert!(TotalOrder.holds(&tr));
    }

    #[test]
    fn single_process_always_ordered() {
        let (a, b) = (m(0, 1), m(0, 2));
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(0), b),
            Event::deliver(p(0), a),
        ]);
        assert!(TotalOrder.holds(&tr));
    }
}
