use crate::props::Property;
use crate::{ProcessId, Trace};
use std::collections::BTreeSet;

/// **Reliability** (Table 1): every message that is sent is delivered to
/// all receivers.
///
/// "All receivers" is the configured group — the trace model has no
/// membership of its own, so the property is parameterized the way the
/// paper's experiments fix a group of ten processes.
///
/// Reliability is the paper's canonical example of a property that is *not
/// Safe* (§5.1): chop a suffix off a reliable trace and the remaining sends
/// may lack deliveries. It is nevertheless preserved by the switching
/// protocol (§6.3) — SP delays messages but never destroys them.
#[derive(Debug, Clone)]
pub struct Reliability {
    group: BTreeSet<ProcessId>,
}

impl Reliability {
    /// Creates the property for the given receiver group.
    pub fn new(group: impl IntoIterator<Item = ProcessId>) -> Self {
        Self { group: group.into_iter().collect() }
    }

    /// The configured receiver group.
    pub fn group(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.group.iter().copied()
    }
}

impl Property for Reliability {
    fn name(&self) -> &'static str {
        "Reliability"
    }

    fn description(&self) -> &'static str {
        "every message that is sent is delivered to all receivers"
    }

    fn holds(&self, tr: &Trace) -> bool {
        tr.sent_ids().iter().all(|&id| {
            let reached: BTreeSet<ProcessId> = tr.deliveries_of(id).collect();
            self.group.iter().all(|p| reached.contains(p))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Message};

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn holds_when_everyone_delivers_everything() {
        let group = [p(0), p(1), p(2)];
        let msgs = [Message::with_tag(p(0), 1, 1), Message::with_tag(p(1), 1, 2)];
        let tr = Trace::broadcast_all(&group, &msgs);
        assert!(Reliability::new(group).holds(&tr));
    }

    #[test]
    fn fails_when_one_receiver_misses_one_message() {
        let m = Message::with_tag(p(0), 1, 1);
        let tr = Trace::from_events(vec![
            Event::send(m.clone()),
            Event::deliver(p(0), m.clone()),
            Event::deliver(p(1), m),
        ]);
        assert!(!Reliability::new([p(0), p(1), p(2)]).holds(&tr));
        assert!(Reliability::new([p(0), p(1)]).holds(&tr));
    }

    #[test]
    fn delivery_order_is_irrelevant() {
        // Deliver-before-send in trace order still counts (asynchrony).
        let m = Message::with_tag(p(0), 1, 1);
        let tr = Trace::from_events(vec![
            Event::deliver(p(1), m.clone()),
            Event::deliver(p(0), m.clone()),
            Event::send(m),
        ]);
        assert!(Reliability::new([p(0), p(1)]).holds(&tr));
    }

    #[test]
    fn unsent_deliveries_do_not_matter() {
        // Reliability constrains sent messages only; spurious deliveries
        // are Integrity's concern.
        let m = Message::with_tag(p(0), 1, 1);
        let tr = Trace::from_events(vec![Event::deliver(p(1), m)]);
        assert!(Reliability::new([p(0), p(1)]).holds(&tr));
    }

    #[test]
    fn prefix_can_break_it() {
        // The paper's §5.1 example: reliability is not a safety property.
        let group = [p(0), p(1)];
        let tr = Trace::broadcast_all(&group, &[Message::with_tag(p(0), 1, 1)]);
        let rel = Reliability::new(group);
        assert!(rel.holds(&tr));
        assert!(!rel.holds(&tr.prefix(tr.len() - 1)));
    }
}
