use crate::props::Property;
use crate::{Event, Trace};
use std::collections::HashSet;

/// **No Replay** (Table 1): a message body can be delivered at most once to
/// a process.
///
/// Note *body*, not message id: two distinct messages with equal payloads
/// count as a replay. This is what breaks composability (§6.2): two traces
/// with disjoint message ids can each deliver the same body once, and the
/// concatenation delivers it twice — which is precisely why switching
/// between two individually no-replay protocols can violate No Replay.
///
/// It *is* memoryless (§6.1): erasing all events of a message cannot create
/// a duplicate delivery. (An implementation still has to remember seen
/// bodies — memoryless is a property of the *predicate*, not a license for
/// stateless implementations, as the paper is careful to point out.)
#[derive(Debug, Clone, Copy, Default)]
pub struct NoReplay;

impl Property for NoReplay {
    fn name(&self) -> &'static str {
        "No Replay"
    }

    fn description(&self) -> &'static str {
        "a message body can be delivered at most once to a process"
    }

    fn holds(&self, tr: &Trace) -> bool {
        let mut seen = HashSet::new();
        for e in tr.iter() {
            if let Event::Deliver(p, m) = e {
                if !seen.insert((*p, m.body.clone())) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, ProcessId};

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn single_delivery_per_process_ok() {
        let m = Message::with_tag(p(0), 1, 7);
        let tr = Trace::from_events(vec![
            Event::send(m.clone()),
            Event::deliver(p(0), m.clone()),
            Event::deliver(p(1), m),
        ]);
        assert!(NoReplay.holds(&tr));
    }

    #[test]
    fn duplicate_delivery_of_same_message_fails() {
        let m = Message::with_tag(p(0), 1, 7);
        let tr = Trace::from_events(vec![
            Event::send(m.clone()),
            Event::deliver(p(1), m.clone()),
            Event::deliver(p(1), m),
        ]);
        assert!(!NoReplay.holds(&tr));
    }

    #[test]
    fn same_body_different_id_is_still_a_replay() {
        let a = Message::with_tag(p(0), 1, 7);
        let b = Message::with_tag(p(0), 2, 7); // different id, same body
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(1), a),
            Event::deliver(p(1), b),
        ]);
        assert!(!NoReplay.holds(&tr));
    }

    #[test]
    fn different_bodies_are_fine() {
        let a = Message::with_tag(p(0), 1, 7);
        let b = Message::with_tag(p(0), 2, 8);
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(1), a),
            Event::deliver(p(1), b),
        ]);
        assert!(NoReplay.holds(&tr));
    }

    #[test]
    fn composition_counterexample_from_the_paper() {
        // §6.2: each half satisfies No Replay, the concatenation does not.
        let a = Message::with_tag(p(0), 1, 7);
        let b = Message::with_tag(p(0), 2, 7);
        let tr1 = Trace::from_events(vec![Event::send(a.clone()), Event::deliver(p(1), a)]);
        let tr2 = Trace::from_events(vec![Event::send(b.clone()), Event::deliver(p(1), b)]);
        assert!(NoReplay.holds(&tr1));
        assert!(NoReplay.holds(&tr2));
        assert!(!NoReplay.holds(&tr1.concat(&tr2)));
    }
}
