use crate::props::Property;
use crate::{Event, MsgId, Trace};
use std::collections::{BTreeSet, HashMap};

/// **Causal Order** (extension; not in the paper's Table 1): processes
/// deliver causally related messages in causal order.
///
/// Potential causality is read off the trace: when process `q` sends `m2`,
/// every message `q` had previously sent or delivered (transitively with
/// *its* causal past) precedes `m2`. The property requires that any process
/// delivering two causally ordered messages delivers them in that order.
///
/// This property is an instructive companion to Reliability in the §6.3
/// discussion: the checker shows it is **not Delayable** (delaying a
/// delivery past the next send *adds* a causal edge that other processes
/// may already have violated), so it sits outside the paper's sufficient
/// class — yet the switching protocol preserves it operationally: SP
/// delivers all old-protocol messages before any new-protocol message at
/// every process, and a message can never causally follow a message of a
/// *newer* era. Sufficient, not necessary, exactly as the paper notes.
#[derive(Debug, Clone, Copy, Default)]
pub struct CausalOrder;

impl Property for CausalOrder {
    fn name(&self) -> &'static str {
        "Causal Order"
    }

    fn description(&self) -> &'static str {
        "processes deliver causally related messages in causal order"
    }

    fn holds(&self, tr: &Trace) -> bool {
        // context[p]: p's causal past (message ids). preds[m]: m's causal
        // predecessors, frozen at its send.
        let mut context: HashMap<crate::ProcessId, BTreeSet<MsgId>> = HashMap::new();
        let mut preds: HashMap<MsgId, BTreeSet<MsgId>> = HashMap::new();
        // Per process: delivery position of each message.
        let mut pos: HashMap<crate::ProcessId, HashMap<MsgId, usize>> = HashMap::new();

        for e in tr.iter() {
            match e {
                Event::Send(m) => {
                    let ctx = context.entry(m.id.sender).or_default();
                    preds.entry(m.id).or_insert_with(|| ctx.clone());
                    ctx.insert(m.id);
                }
                Event::Deliver(p, m) => {
                    let seq = pos.entry(*p).or_default();
                    let next = seq.len();
                    seq.entry(m.id).or_insert(next);
                    let ctx = context.entry(*p).or_default();
                    if let Some(ps) = preds.get(&m.id) {
                        ctx.extend(ps.iter().copied());
                    }
                    ctx.insert(m.id);
                }
            }
        }

        // Check every (process, delivered pair) against the causal order.
        for seq in pos.values() {
            for (&m2, &i2) in seq {
                let Some(ps) = preds.get(&m2) else { continue };
                for m1 in ps {
                    if let Some(&i1) = seq.get(m1) {
                        if i1 > i2 {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, ProcessId};

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn reply_after_delivery_is_causal() {
        // p1 replies (b) after delivering a: everyone must order a before b.
        let a = Message::with_tag(p(0), 1, 1);
        let b = Message::with_tag(p(1), 1, 2);
        let good = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::deliver(p(1), a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(2), a.clone()),
            Event::deliver(p(2), b.clone()),
        ]);
        assert!(CausalOrder.holds(&good));

        let bad = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::deliver(p(1), a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(2), b),
            Event::deliver(p(2), a),
        ]);
        assert!(!CausalOrder.holds(&bad));
    }

    #[test]
    fn concurrent_messages_may_order_freely() {
        let a = Message::with_tag(p(0), 1, 1);
        let b = Message::with_tag(p(1), 1, 2);
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(2), b.clone()),
            Event::deliver(p(2), a.clone()),
            Event::deliver(p(0), a),
            Event::deliver(p(0), b),
        ]);
        assert!(CausalOrder.holds(&tr), "concurrent sends are unordered");
    }

    #[test]
    fn fifo_is_a_special_case() {
        // Two sends by the same process are causally ordered.
        let a = Message::with_tag(p(0), 1, 1);
        let b = Message::with_tag(p(0), 2, 2);
        let bad = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(1), b),
            Event::deliver(p(1), a),
        ]);
        assert!(!CausalOrder.holds(&bad));
    }

    #[test]
    fn transitive_chains_are_tracked() {
        // a → b (p1 saw a) and b → c (p2 saw b): delivering c before a at
        // p3 violates the transitive edge a → c.
        let a = Message::with_tag(p(0), 1, 1);
        let b = Message::with_tag(p(1), 1, 2);
        let c = Message::with_tag(p(2), 1, 3);
        let bad = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::deliver(p(1), a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(2), b.clone()),
            Event::send(c.clone()),
            Event::deliver(p(3), c),
            Event::deliver(p(3), a),
        ]);
        assert!(!CausalOrder.holds(&bad));
    }

    #[test]
    fn delaying_a_delivery_past_a_send_adds_an_edge() {
        // The Delayable counterexample shape: below, p1's delivery of a
        // comes *after* its send of b (a and b concurrent; p2 may order
        // them b-then-a). The delayable swap moves p1's delivery before
        // its send, creating a → b — which p2's order now violates.
        let a = Message::with_tag(p(0), 1, 1);
        let b = Message::with_tag(p(1), 1, 2);
        let below = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::deliver(p(2), a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(1), a.clone()),
            Event::deliver(p(2), b.clone()),
        ]);
        assert!(CausalOrder.holds(&below), "a and b are concurrent below");
        // Reorder p2's deliveries to b-then-a (still concurrent: fine)…
        let below2 = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::send(b.clone()),
            Event::deliver(p(1), a.clone()),
            Event::deliver(p(2), b.clone()),
            Event::deliver(p(2), a.clone()),
        ]);
        // …here Send(b) and Deliver(p1,a) are adjacent at indices 1,2 —
        // same process p1, swappable by the delayable relation.
        assert!(CausalOrder.holds(&below2));
        let above = below2.swap_adjacent(1);
        assert!(
            !CausalOrder.holds(&above),
            "the delay-created edge a → b must now be violated by p2: {above}"
        );
    }
}
