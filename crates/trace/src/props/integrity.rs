use crate::props::Property;
use crate::{Event, ProcessId, Trace};
use std::collections::BTreeSet;

/// **Integrity** (Table 1): messages cannot be forged; they are sent by
/// trusted processes.
///
/// Formally: every delivery is preceded by the send of the same message,
/// and that sender is in the trusted set. The "preceded" part encodes
/// causality — a delivery with no prior send is exactly a forgery. The
/// rewrite relations in [`crate::meta`] never invert a send/deliver pair of
/// the same message, so Integrity satisfies all six meta-properties, as in
/// the paper's Table 2.
#[derive(Debug, Clone)]
pub struct Integrity {
    trusted: BTreeSet<ProcessId>,
}

impl Integrity {
    /// Creates the property with the given trusted set.
    pub fn new(trusted: impl IntoIterator<Item = ProcessId>) -> Self {
        Self { trusted: trusted.into_iter().collect() }
    }

    /// Whether `p` is trusted.
    pub fn is_trusted(&self, p: ProcessId) -> bool {
        self.trusted.contains(&p)
    }
}

impl Property for Integrity {
    fn name(&self) -> &'static str {
        "Integrity"
    }

    fn description(&self) -> &'static str {
        "messages cannot be forged; they are sent by trusted processes"
    }

    fn holds(&self, tr: &Trace) -> bool {
        let mut sent = BTreeSet::new();
        for e in tr.iter() {
            match e {
                Event::Send(m) => {
                    sent.insert(m.id);
                }
                Event::Deliver(_, m) => {
                    if !sent.contains(&m.id) || !self.trusted.contains(&m.id.sender) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn holds_for_trusted_sends_then_deliveries() {
        let m = Message::with_tag(p(0), 1, 3);
        let tr = Trace::from_events(vec![Event::send(m.clone()), Event::deliver(p(1), m)]);
        assert!(Integrity::new([p(0)]).holds(&tr));
    }

    #[test]
    fn forged_delivery_fails() {
        // Delivery with no send anywhere: forged.
        let m = Message::with_tag(p(0), 1, 3);
        let tr = Trace::from_events(vec![Event::deliver(p(1), m)]);
        assert!(!Integrity::new([p(0)]).holds(&tr));
    }

    #[test]
    fn delivery_before_send_fails() {
        // A delivery preceding its own send is indistinguishable from a
        // forgery at the moment it happens.
        let m = Message::with_tag(p(0), 1, 3);
        let tr = Trace::from_events(vec![Event::deliver(p(1), m.clone()), Event::send(m)]);
        assert!(!Integrity::new([p(0)]).holds(&tr));
    }

    #[test]
    fn untrusted_sender_fails() {
        let m = Message::with_tag(p(2), 1, 3);
        let tr = Trace::from_events(vec![Event::send(m.clone()), Event::deliver(p(1), m)]);
        assert!(!Integrity::new([p(0), p(1)]).holds(&tr));
    }

    #[test]
    fn untrusted_send_without_delivery_is_fine() {
        // The property constrains deliveries; an untrusted process may
        // *send* (its messages must simply never be delivered).
        let m = Message::with_tag(p(2), 1, 3);
        let tr = Trace::from_events(vec![Event::send(m)]);
        assert!(Integrity::new([p(0)]).holds(&tr));
    }
}
