use crate::props::Property;
use crate::{Event, ProcessId, Trace};
use std::collections::BTreeSet;

/// **Prioritized Delivery** (Table 1): the master process always delivers a
/// message before any one else.
///
/// This property constrains the *relative order of events at different
/// processes* (the master's delivery vs. everyone else's), so it is not
/// Asynchronous (§5.2) — layering delay can present the non-master delivery
/// first — and the paper notes it is indeed not preserved by the switching
/// protocol.
#[derive(Debug, Clone, Copy)]
pub struct PrioritizedDelivery {
    master: ProcessId,
}

impl PrioritizedDelivery {
    /// Creates the property with the given master process.
    pub fn new(master: ProcessId) -> Self {
        Self { master }
    }

    /// The configured master.
    pub fn master(&self) -> ProcessId {
        self.master
    }
}

impl Property for PrioritizedDelivery {
    fn name(&self) -> &'static str {
        "Prioritized Delivery"
    }

    fn description(&self) -> &'static str {
        "the master process always delivers a message before any one else"
    }

    fn holds(&self, tr: &Trace) -> bool {
        let mut master_has = BTreeSet::new();
        for e in tr.iter() {
            if let Event::Deliver(p, m) = e {
                if *p == self.master {
                    master_has.insert(m.id);
                } else if !master_has.contains(&m.id) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn master_first_holds() {
        let m = Message::with_tag(p(1), 1, 0);
        let tr = Trace::from_events(vec![
            Event::send(m.clone()),
            Event::deliver(p(0), m.clone()),
            Event::deliver(p(1), m.clone()),
            Event::deliver(p(2), m),
        ]);
        assert!(PrioritizedDelivery::new(p(0)).holds(&tr));
    }

    #[test]
    fn non_master_first_fails() {
        let m = Message::with_tag(p(1), 1, 0);
        let tr = Trace::from_events(vec![
            Event::send(m.clone()),
            Event::deliver(p(1), m.clone()),
            Event::deliver(p(0), m),
        ]);
        assert!(!PrioritizedDelivery::new(p(0)).holds(&tr));
    }

    #[test]
    fn master_never_delivering_blocks_everyone() {
        let m = Message::with_tag(p(1), 1, 0);
        let tr = Trace::from_events(vec![Event::send(m.clone()), Event::deliver(p(2), m)]);
        assert!(!PrioritizedDelivery::new(p(0)).holds(&tr));
    }

    #[test]
    fn sends_are_unconstrained() {
        let m = Message::with_tag(p(1), 1, 0);
        let tr = Trace::from_events(vec![Event::send(m)]);
        assert!(PrioritizedDelivery::new(p(0)).holds(&tr));
    }

    #[test]
    fn adjacent_swap_across_processes_breaks_it() {
        // The §5.2 claim, concretely: the asynchrony rewrite violates it.
        let m = Message::with_tag(p(1), 1, 0);
        let tr = Trace::from_events(vec![
            Event::send(m.clone()),
            Event::deliver(p(0), m.clone()),
            Event::deliver(p(2), m),
        ]);
        let pd = PrioritizedDelivery::new(p(0));
        assert!(pd.holds(&tr));
        let swapped = tr.swap_adjacent(1);
        assert!(!pd.holds(&swapped));
    }
}
