//! The eight example properties of the paper's Table 1, as executable
//! predicates on [`Trace`]s.
//!
//! | Property | Table-1 definition |
//! |---|---|
//! | [`Reliability`] | Every message that is sent is delivered to all receivers |
//! | [`TotalOrder`] | Processes that deliver the same two messages deliver them in the same order |
//! | [`Integrity`] | Messages cannot be forged; they are sent by trusted processes |
//! | [`Confidentiality`] | Non-trusted processes cannot see messages from trusted processes |
//! | [`NoReplay`] | A message body can be delivered at most once to a process |
//! | [`PrioritizedDelivery`] | The master process always delivers a message before any one else |
//! | [`Amoeba`] | A process is blocked from sending while it is awaiting its own messages |
//! | [`VirtualSynchrony`] | A process only delivers messages from processes in some common view |

mod amoeba;
mod causal;
mod confidentiality;
mod integrity;
mod no_replay;
mod priority;
mod reliability;
mod total_order;
mod vsync;

pub use amoeba::Amoeba;
pub use causal::CausalOrder;
pub use confidentiality::Confidentiality;
pub use integrity::Integrity;
pub use no_replay::NoReplay;
pub use priority::PrioritizedDelivery;
pub use reliability::Reliability;
pub use total_order::TotalOrder;
pub use vsync::VirtualSynchrony;

use crate::{ProcessId, Trace};
use std::fmt;

/// A predicate on traces — the paper's notion of a communication property
/// (§3): "dividing all traces into two categories: those traces for which
/// the property holds, and those for which it does not."
pub trait Property: fmt::Debug {
    /// Short name used in tables ("Total Order", …).
    fn name(&self) -> &'static str;

    /// The Table-1 one-line definition.
    fn description(&self) -> &'static str;

    /// Whether the property holds of `tr`.
    fn holds(&self, tr: &Trace) -> bool;
}

/// Builds the paper's full Table-1 property suite over a group of `n`
/// processes.
///
/// Conventions used throughout the workspace's experiments: the *trusted*
/// set is the even-numbered half of the group, and the *master* (for
/// Prioritized Delivery) is process 0.
pub fn standard_suite(n: u16) -> Vec<Box<dyn Property>> {
    let group: Vec<ProcessId> = (0..n).map(ProcessId).collect();
    let trusted: Vec<ProcessId> = (0..n).filter(|i| i % 2 == 0).map(ProcessId).collect();
    vec![
        Box::new(Reliability::new(group.clone())),
        Box::new(TotalOrder),
        Box::new(Integrity::new(trusted.clone())),
        Box::new(Confidentiality::new(trusted)),
        Box::new(NoReplay),
        Box::new(PrioritizedDelivery::new(ProcessId(0))),
        Box::new(Amoeba),
        Box::new(VirtualSynchrony::new(group)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_distinct_properties() {
        let suite = standard_suite(4);
        assert_eq!(suite.len(), 8);
        let mut names: Vec<&str> = suite.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn all_hold_on_empty_trace() {
        // Every Table-1 property is vacuously true of the empty trace.
        let tr = Trace::new();
        for p in standard_suite(3) {
            assert!(p.holds(&tr), "{} should hold on the empty trace", p.name());
        }
    }
}
