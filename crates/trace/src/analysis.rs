//! Trace analysis: quantitative summaries of how far a trace is from the
//! Table-1 ideals.
//!
//! The [`props`](crate::props) predicates answer yes/no; experiment reports
//! often want *how much* — how many ordering inversions, what fraction of
//! deliveries completed, how many duplicates. These helpers compute those
//! numbers from any [`Trace`], live or generated.

use crate::{Event, MsgId, ProcessId, Trace};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Quantitative summary of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Send events.
    pub sends: usize,
    /// Delivery events.
    pub deliveries: usize,
    /// Distinct processes appearing in the trace.
    pub processes: usize,
    /// Fraction of (sent message, group member) pairs that were delivered.
    pub completeness: f64,
    /// Pairwise delivery-order inversions between processes (0 ⇔ the
    /// common-message orders are consistent, i.e. Total Order holds).
    pub inversions: usize,
    /// Deliveries beyond the first of the same message at the same process.
    pub duplicates: usize,
    /// View-change messages delivered.
    pub view_changes: usize,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sends={} deliveries={} procs={} complete={:.1}% inversions={} dups={} views={}",
            self.sends,
            self.deliveries,
            self.processes,
            self.completeness * 100.0,
            self.inversions,
            self.duplicates,
            self.view_changes,
        )
    }
}

/// Counts pairwise ordering inversions between every pair of processes
/// over the messages both deliver.
///
/// Zero inversions on every pair is exactly the Total Order property;
/// the count is a useful "distance from total order" for reports.
pub fn order_inversions(tr: &Trace) -> usize {
    let mut per_process: HashMap<ProcessId, HashMap<MsgId, usize>> = HashMap::new();
    for e in tr.iter() {
        if let Event::Deliver(p, m) = e {
            let seq = per_process.entry(*p).or_default();
            let next = seq.len();
            seq.entry(m.id).or_insert(next);
        }
    }
    let procs: Vec<_> = per_process.keys().copied().collect();
    let mut inversions = 0;
    for (i, &p) in procs.iter().enumerate() {
        for &q in &procs[i + 1..] {
            let sp = &per_process[&p];
            let sq = &per_process[&q];
            let common: Vec<MsgId> = sp.keys().filter(|id| sq.contains_key(id)).copied().collect();
            for (a_idx, &a) in common.iter().enumerate() {
                for &b in &common[a_idx + 1..] {
                    if sp[&a].cmp(&sp[&b]) != sq[&a].cmp(&sq[&b]) {
                        inversions += 1;
                    }
                }
            }
        }
    }
    inversions
}

/// Fraction of (sent message, member) pairs delivered — 1.0 is exactly the
/// Reliability property over `group`.
pub fn completeness(tr: &Trace, group: &[ProcessId]) -> f64 {
    let sent = tr.sent_ids();
    if sent.is_empty() || group.is_empty() {
        return 1.0;
    }
    let mut got = 0usize;
    for &id in &sent {
        let reached: BTreeSet<ProcessId> = tr.deliveries_of(id).collect();
        got += group.iter().filter(|p| reached.contains(p)).count();
    }
    got as f64 / (sent.len() * group.len()) as f64
}

/// Deliveries beyond the first of the same message id at the same process.
pub fn duplicate_deliveries(tr: &Trace) -> usize {
    let mut seen: HashSet<(ProcessId, MsgId)> = HashSet::new();
    let mut dups = 0;
    for e in tr.iter() {
        if let Event::Deliver(p, m) = e {
            if !seen.insert((*p, m.id)) {
                dups += 1;
            }
        }
    }
    dups
}

/// Computes the full [`TraceSummary`] against `group`.
pub fn summarize(tr: &Trace, group: &[ProcessId]) -> TraceSummary {
    TraceSummary {
        sends: tr.iter().filter(|e| e.is_send()).count(),
        deliveries: tr.iter().filter(|e| e.is_deliver()).count(),
        processes: tr.processes().len(),
        completeness: completeness(tr, group),
        inversions: order_inversions(tr),
        duplicates: duplicate_deliveries(tr),
        view_changes: tr.iter().filter(|e| e.is_deliver() && e.message().is_view_change()).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn msg(s: u16, seq: u64) -> Message {
        Message::with_tag(p(s), seq, (seq % 250) as u8)
    }

    #[test]
    fn perfect_trace_summary() {
        let group = [p(0), p(1)];
        let tr = Trace::broadcast_all(&group, &[msg(0, 1), msg(1, 1)]);
        let s = summarize(&tr, &group);
        assert_eq!(s.sends, 2);
        assert_eq!(s.deliveries, 4);
        assert_eq!(s.completeness, 1.0);
        assert_eq!(s.inversions, 0);
        assert_eq!(s.duplicates, 0);
        assert_eq!(s.view_changes, 0);
        assert!(s.to_string().contains("complete=100.0%"));
    }

    #[test]
    fn inversions_count_disagreements() {
        let (a, b, c) = (msg(0, 1), msg(0, 2), msg(0, 3));
        // p1: a b c ; p2: c b a → 3 inverted pairs.
        let mut tr = Trace::new();
        for m in [&a, &b, &c] {
            tr.push(Event::send((*m).clone()));
        }
        for m in [&a, &b, &c] {
            tr.push(Event::deliver(p(1), (*m).clone()));
        }
        for m in [&c, &b, &a] {
            tr.push(Event::deliver(p(2), (*m).clone()));
        }
        assert_eq!(order_inversions(&tr), 3);
    }

    #[test]
    fn completeness_counts_missing_pairs() {
        let a = msg(0, 1);
        let tr = Trace::from_events(vec![Event::send(a.clone()), Event::deliver(p(0), a)]);
        let c = completeness(&tr, &[p(0), p(1)]);
        assert!((c - 0.5).abs() < 1e-9);
        assert_eq!(completeness(&Trace::new(), &[p(0)]), 1.0);
    }

    #[test]
    fn duplicates_counted_per_process() {
        let a = msg(0, 1);
        let tr = Trace::from_events(vec![
            Event::send(a.clone()),
            Event::deliver(p(1), a.clone()),
            Event::deliver(p(1), a.clone()),
            Event::deliver(p(2), a),
        ]);
        assert_eq!(duplicate_deliveries(&tr), 1);
    }

    #[test]
    fn view_changes_counted() {
        let v = Message::view_change(p(0), 1, 1, vec![p(0), p(1)]);
        let tr = Trace::from_events(vec![
            Event::send(v.clone()),
            Event::deliver(p(0), v.clone()),
            Event::deliver(p(1), v),
        ]);
        assert_eq!(summarize(&tr, &[p(0), p(1)]).view_changes, 2);
    }
}
