//! Exhaustive (bounded) checking of the meta-property matrix.
//!
//! The randomized checker in [`crate::check`] samples generator output; this
//! module instead enumerates **every** well-formed trace over a small event
//! universe, and explores the **full closure** of each rewrite relation.
//! Within the bound this is bounded model checking: a ✗ is a definitive
//! counterexample, and a ✓ means *no* counterexample exists among all
//! traces of the universe — the strongest evidence short of the paper's
//! Nuprl proofs.
//!
//! A universe is a set of candidate events: one `Send` per message plus one
//! `Deliver` per (process, message) pair. Traces are all ordered
//! arrangements of distinct subsets up to a length bound.

use crate::check::{CellVerdict, Counterexample};
use crate::meta::{async_swap_sites, compose_disjoint, delayable_swap_sites, prefixes, MetaKind};
use crate::props::Property;
use crate::{Event, Message, ProcessId, Trace};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// The candidate events over `procs` processes and the given messages:
/// each message's send, and its delivery at every process.
pub fn event_universe(procs: u16, msgs: &[Message]) -> Vec<Event> {
    let mut events = Vec::new();
    for m in msgs {
        events.push(Event::send(m.clone()));
        for p in 0..procs {
            events.push(Event::deliver(ProcessId(p), m.clone()));
        }
    }
    events
}

/// Every arrangement of distinct universe events with length `<= max_len`
/// (including the empty trace). All results are well-formed because each
/// send appears at most once.
///
/// Size grows as `sum_k P(n, k)`; keep `max_len` small (≤ 5 for a 12-event
/// universe ⇒ ~100k traces).
pub fn enumerate_traces(universe: &[Event], max_len: usize) -> Vec<Trace> {
    let n = universe.len();
    let mut out = vec![Trace::new()];
    let mut frontier: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for seq in &frontier {
            for i in 0..n {
                if !seq.contains(&i) {
                    let mut s = seq.clone();
                    s.push(i);
                    out.push(s.iter().map(|&j| universe[j].clone()).collect());
                    next.push(s);
                }
            }
        }
        frontier = next;
    }
    out
}

/// The full reflexive-transitive closure of an adjacent-swap relation,
/// explored breadth-first (capped for safety; a trace of length L has at
/// most L! permutations).
pub fn swap_closure(tr: &Trace, sites: fn(&Trace) -> Vec<usize>, cap: usize) -> Vec<Trace> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<Trace> = VecDeque::new();
    let mut out = Vec::new();
    seen.insert(tr.to_string());
    queue.push_back(tr.clone());
    while let Some(cur) = queue.pop_front() {
        for i in sites(&cur) {
            let next = cur.swap_adjacent(i);
            if seen.insert(next.to_string()) {
                out.push(next.clone());
                if out.len() >= cap {
                    return out;
                }
                queue.push_back(next);
            }
        }
    }
    out
}

/// All erasures: one per non-empty subset of the trace's messages.
fn all_erasures(tr: &Trace) -> Vec<Trace> {
    let ids: Vec<_> = tr.message_ids().into_iter().collect();
    let mut out = Vec::new();
    for mask in 1u32..(1 << ids.len().min(20)) {
        let subset: BTreeSet<_> = ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &id)| id)
            .collect();
        out.push(tr.erase_messages(&subset));
    }
    out
}

/// All one- and two-send extensions drawn from `extension_msgs` (fresh
/// messages not in the universe).
fn all_extensions(tr: &Trace, extension_msgs: &[Message]) -> Vec<Trace> {
    let mut out = Vec::new();
    for m in extension_msgs {
        let mut t = tr.clone();
        t.push(Event::send(m.clone()));
        out.push(t.clone());
        for m2 in extension_msgs {
            if m2.id != m.id {
                let mut t2 = t.clone();
                t2.push(Event::send(m2.clone()));
                out.push(t2);
            }
        }
    }
    out
}

/// Budget for the exhaustive search.
#[derive(Debug, Clone)]
pub struct ExhaustiveConfig {
    /// Maximum trace length enumerated.
    pub max_len: usize,
    /// Cap on each swap closure (ample for `max_len ≤ 6`).
    pub closure_cap: usize,
    /// Cap on composable pairs (pairs are enumerated in deterministic
    /// order; the cap bounds worst-case cost on large satisfying pools).
    pub max_pairs: usize,
    /// Fresh messages available to the Send-Enabled relation.
    pub extension_msgs: Vec<Message>,
}

impl Default for ExhaustiveConfig {
    fn default() -> Self {
        Self {
            max_len: 5,
            closure_cap: 1_000,
            max_pairs: 60_000,
            extension_msgs: vec![
                Message::with_tag(ProcessId(0), 900, 10),
                Message::with_tag(ProcessId(1), 901, 20),
            ],
        }
    }
}

/// Exhaustively checks one cell over all traces of `universe`.
pub fn check_cell_exhaustive(
    prop: &dyn Property,
    meta: MetaKind,
    universe: &[Event],
    cfg: &ExhaustiveConfig,
) -> CellVerdict {
    let pool: Vec<Trace> =
        enumerate_traces(universe, cfg.max_len).into_iter().filter(|tr| prop.holds(tr)).collect();
    let mut samples = 0usize;

    fn fail(
        meta: MetaKind,
        samples: usize,
        below: &Trace,
        second: Option<&Trace>,
        above: Trace,
    ) -> CellVerdict {
        CellVerdict {
            meta,
            preserved: false,
            samples,
            counterexample: Some(Counterexample {
                below: below.clone(),
                second_below: second.cloned(),
                above,
            }),
        }
    }

    match meta {
        MetaKind::Safety => {
            for below in &pool {
                for above in prefixes(below) {
                    samples += 1;
                    if !prop.holds(&above) {
                        return fail(meta, samples, below, None, above);
                    }
                }
            }
        }
        MetaKind::Asynchrony | MetaKind::Delayable => {
            let sites =
                if meta == MetaKind::Asynchrony { async_swap_sites } else { delayable_swap_sites };
            for below in &pool {
                for above in swap_closure(below, sites, cfg.closure_cap) {
                    samples += 1;
                    if !prop.holds(&above) {
                        return fail(meta, samples, below, None, above);
                    }
                }
            }
        }
        MetaKind::SendEnabled => {
            for below in &pool {
                for above in all_extensions(below, &cfg.extension_msgs) {
                    samples += 1;
                    if !prop.holds(&above) {
                        return fail(meta, samples, below, None, above);
                    }
                }
            }
        }
        MetaKind::Memoryless => {
            for below in &pool {
                for above in all_erasures(below) {
                    samples += 1;
                    if !prop.holds(&above) {
                        return fail(meta, samples, below, None, above);
                    }
                }
            }
        }
        MetaKind::Composable => {
            'outer: for (i, a) in pool.iter().enumerate() {
                for b in &pool {
                    if samples >= cfg.max_pairs {
                        break 'outer;
                    }
                    samples += 1;
                    let above = compose_disjoint(a, b);
                    if !prop.holds(&above) {
                        return fail(meta, samples, a, Some(b), above);
                    }
                }
                let _ = i;
            }
        }
    }
    CellVerdict { meta, preserved: true, samples, counterexample: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{NoReplay, Reliability, TotalOrder};

    fn universe() -> Vec<Event> {
        event_universe(
            2,
            &[Message::with_tag(ProcessId(0), 1, 7), Message::with_tag(ProcessId(1), 1, 7)],
        )
    }

    #[test]
    fn enumeration_counts_match_permutations() {
        // 3 events, max_len 2: 1 + 3 + 3·2 = 10 traces.
        let u = &event_universe(1, &[Message::with_tag(ProcessId(0), 1, 1)])[..2];
        let mut u = u.to_vec();
        u.push(Event::deliver(ProcessId(0), Message::with_tag(ProcessId(0), 2, 2)));
        let traces = enumerate_traces(&u, 2);
        assert_eq!(traces.len(), 10);
        assert!(traces.iter().all(Trace::is_well_formed));
    }

    #[test]
    fn closure_reaches_all_commutations() {
        // Two independent events at different processes: closure = 1 other
        // ordering.
        let a = Message::with_tag(ProcessId(0), 1, 1);
        let b = Message::with_tag(ProcessId(1), 1, 2);
        let tr = Trace::from_events(vec![Event::send(a), Event::send(b)]);
        let closure = swap_closure(&tr, async_swap_sites, 100);
        assert_eq!(closure.len(), 1);
    }

    #[test]
    fn reliability_safety_fails_exhaustively() {
        let v = check_cell_exhaustive(
            &Reliability::new([ProcessId(0), ProcessId(1)]),
            MetaKind::Safety,
            &universe(),
            &ExhaustiveConfig::default(),
        );
        assert!(!v.preserved);
    }

    #[test]
    fn total_order_asynchrony_holds_exhaustively() {
        let v = check_cell_exhaustive(
            &TotalOrder,
            MetaKind::Asynchrony,
            &universe(),
            &ExhaustiveConfig::default(),
        );
        assert!(v.preserved, "{:?}", v.counterexample);
        assert!(v.samples > 1_000);
    }

    #[test]
    fn no_replay_composable_fails_exhaustively() {
        // The universe's two messages share a body: composition replays it.
        let v = check_cell_exhaustive(
            &NoReplay,
            MetaKind::Composable,
            &universe(),
            &ExhaustiveConfig::default(),
        );
        assert!(!v.preserved);
    }
}
