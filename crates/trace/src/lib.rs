//! Executable version of the paper's formal model (§3–§6).
//!
//! The paper reasons about *traces* — ordered sequences of `Send(m)` and
//! `Deliver(p:m)` events — and about *properties*, predicates on traces
//! (Table 1). To classify which properties survive protocol switching it
//! introduces *meta-properties* (properties of properties), each defined by
//! preservation through a relation on traces (Equation 1):
//!
//! ```text
//! P(tr_below)  ∧  tr_above R tr_below   ⟹   P(tr_above)
//! ```
//!
//! This crate makes the whole apparatus executable:
//!
//! * [`Event`], [`Message`], [`Trace`] — the trace model. View changes
//!   (needed for the Virtual Synchrony property) are encoded as
//!   distinguished *messages*, not a new event kind, mirroring how
//!   view-synchronous systems actually disseminate views and keeping the
//!   model exactly Send/Deliver as in the paper.
//! * [`props::Property`] and the eight Table-1 properties in [`props`].
//! * The six meta-properties in [`meta`]: Safety, Asynchrony, Delayable,
//!   Send Enabled, Memoryless, Composable — each a trace-rewriting
//!   relation.
//! * [`check`] — the preservation checker that regenerates Table 2 by
//!   generator-driven search plus randomized rewriting. Where the paper
//!   proves preservation in Nuprl, we *test* it and report concrete
//!   counterexample traces for every ✗ cell.
//! * [`exhaustive`] — bounded model checking: every trace over a small
//!   event universe, every rewrite in the relation's closure.
//! * [`analysis`] — quantitative summaries (ordering inversions,
//!   completeness, duplicates) for experiment reports.
//!
//! One modelling note: the rewrite relations never move a `Deliver` of a
//! message before its `Send`. Layering delays can reorder independent
//! events, but no delay inverts causality; without this guard even
//! Integrity would be "non-asynchronous", contradicting the paper's
//! Table 2.
//!
//! # Examples
//!
//! ```
//! use ps_trace::{Event, Message, ProcessId, Trace};
//! use ps_trace::props::{Property, TotalOrder};
//!
//! let p0 = ProcessId(0);
//! let p1 = ProcessId(1);
//! let a = Message::with_tag(p0, 1, 7);
//! let b = Message::with_tag(p1, 1, 8);
//!
//! // Both processes deliver a then b: totally ordered.
//! let tr = Trace::from_events(vec![
//!     Event::send(a.clone()),
//!     Event::send(b.clone()),
//!     Event::deliver(p0, a.clone()),
//!     Event::deliver(p1, a.clone()),
//!     Event::deliver(p0, b.clone()),
//!     Event::deliver(p1, b.clone()),
//! ]);
//! assert!(TotalOrder.holds(&tr));
//!
//! // p1 delivers them in the opposite order: violation.
//! let bad = Trace::from_events(vec![
//!     Event::send(a.clone()),
//!     Event::send(b.clone()),
//!     Event::deliver(p0, a.clone()),
//!     Event::deliver(p0, b.clone()),
//!     Event::deliver(p1, b),
//!     Event::deliver(p1, a),
//! ]);
//! assert!(!TotalOrder.holds(&bad));
//! ```

mod event;
mod trace;

pub mod analysis;
pub mod check;
pub mod exhaustive;
pub mod gen;
pub mod meta;
pub mod props;

pub use event::{Event, Message, MsgId, ProcessId, ViewInfo};
pub use trace::Trace;
