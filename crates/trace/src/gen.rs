//! Seeded generators of traces *satisfying* each Table-1 property.
//!
//! The preservation checker (Equation 1) needs `tr_below` traces for which
//! `P(tr_below)` holds; random traces almost never satisfy the stronger
//! properties, so each property ships a dedicated generator. Generators are
//! deliberately "tight": events that could violate a property under a
//! rewrite are generated adjacent to each other often, so ✗ cells are found
//! quickly.
//!
//! All generators draw from a tiny body alphabet ([`BODY_ALPHABET`]). Body
//! collisions across distinct messages are exactly what the No-Replay
//! composability counterexample requires.

use crate::{Event, Message, ProcessId, Trace};

/// The deterministic generator trace generation draws from (xoshiro256++,
/// re-exported so downstream code never names the RNG crate directly).
pub use ps_rand::Xoshiro256pp as Rng;

/// The small payload alphabet generators draw bodies from.
pub const BODY_ALPHABET: [u8; 4] = [10, 20, 30, 40];

/// A seeded source of traces satisfying some condition.
pub trait TraceGen: std::fmt::Debug {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;

    /// Produces one trace with roughly `size` events.
    fn generate(&self, rng: &mut Rng, size: usize) -> Trace;
}

fn pick(rng: &mut Rng, n: usize) -> usize {
    rng.random_range(0..n.max(1))
}

fn body(rng: &mut Rng) -> u8 {
    BODY_ALPHABET[pick(rng, BODY_ALPHABET.len())]
}

/// Deterministic seeded RNG helper for tests and benchmarks.
pub fn seeded(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Completely random well-formed traces (sends first come, deliveries drawn
/// from already-sent messages — causally plausible, satisfying no property
/// in particular). The checker filters these by `P(below)`.
#[derive(Debug, Clone)]
pub struct UniversalGen {
    /// Number of processes events are drawn over.
    pub procs: u16,
}

impl TraceGen for UniversalGen {
    fn name(&self) -> &'static str {
        "universal"
    }

    fn generate(&self, rng: &mut Rng, size: usize) -> Trace {
        let mut tr = Trace::new();
        let mut sent: Vec<Message> = Vec::new();
        let mut next_seq = vec![1u64; usize::from(self.procs)];
        for _ in 0..size {
            let send_it = sent.is_empty() || rng.random_bool(0.4);
            if send_it {
                let s = pick(rng, usize::from(self.procs));
                let m = Message::with_tag(ProcessId(s as u16), next_seq[s], body(rng));
                next_seq[s] += 1;
                sent.push(m.clone());
                tr.push(Event::send(m));
            } else {
                let m = sent[pick(rng, sent.len())].clone();
                let p = ProcessId(pick(rng, usize::from(self.procs)) as u16);
                tr.push(Event::deliver(p, m));
            }
        }
        tr
    }
}

/// Traces in which every sent message is delivered to the whole group
/// (satisfies Reliability; delivery order is shuffled).
#[derive(Debug, Clone)]
pub struct ReliableGen {
    /// The receiver group.
    pub group: Vec<ProcessId>,
}

impl TraceGen for ReliableGen {
    fn name(&self) -> &'static str {
        "reliable"
    }

    fn generate(&self, rng: &mut Rng, size: usize) -> Trace {
        let per_msg = self.group.len() + 1;
        let n_msgs = (size / per_msg).max(1);
        let mut pending: Vec<Event> = Vec::new();
        let mut tr = Trace::new();
        for i in 0..n_msgs {
            let sender = self.group[pick(rng, self.group.len())];
            let m = Message::with_tag(sender, (i + 1) as u64, body(rng));
            tr.push(Event::send(m.clone()));
            for &p in &self.group {
                pending.push(Event::deliver(p, m.clone()));
            }
            // Flush a random amount of pending deliveries to interleave.
            while !pending.is_empty() && rng.random_bool(0.7) {
                let idx = pick(rng, pending.len());
                tr.push(pending.swap_remove(idx));
            }
        }
        for e in pending {
            tr.push(e);
        }
        tr
    }
}

/// Traces with a global total order on messages; each process delivers a
/// random subsequence of that order (satisfies Total Order).
#[derive(Debug, Clone)]
pub struct TotalOrderGen {
    /// Processes that may deliver.
    pub group: Vec<ProcessId>,
}

impl TraceGen for TotalOrderGen {
    fn name(&self) -> &'static str {
        "total-order"
    }

    fn generate(&self, rng: &mut Rng, size: usize) -> Trace {
        let n_msgs = (size / (self.group.len().max(1) + 1)).max(2);
        let msgs: Vec<Message> = (0..n_msgs)
            .map(|i| {
                let sender = self.group[pick(rng, self.group.len())];
                Message::with_tag(sender, (i + 1) as u64, body(rng))
            })
            .collect();
        let mut tr = Trace::new();
        for m in &msgs {
            tr.push(Event::send(m.clone()));
        }
        // Per-process cursor into the global order; advance cursors in
        // random interleavings, sometimes skipping a message.
        let mut cursor = vec![0usize; self.group.len()];
        loop {
            let live: Vec<usize> =
                (0..self.group.len()).filter(|&i| cursor[i] < msgs.len()).collect();
            if live.is_empty() {
                break;
            }
            let i = live[pick(rng, live.len())];
            let m = &msgs[cursor[i]];
            cursor[i] += 1;
            if rng.random_bool(0.85) {
                tr.push(Event::deliver(self.group[i], m.clone()));
            } // else: this process skips the message (gaps are allowed).
        }
        tr
    }
}

/// Traces in which only trusted processes send, and every delivery follows
/// its send (satisfies Integrity; also satisfies Confidentiality when the
/// receivers are drawn from the trusted set, controlled by
/// `confidential`).
#[derive(Debug, Clone)]
pub struct TrustedGen {
    /// The trusted processes.
    pub trusted: Vec<ProcessId>,
    /// All processes (receivers are drawn from here unless `confidential`).
    pub everyone: Vec<ProcessId>,
    /// Restrict receivers of trusted traffic to the trusted set.
    pub confidential: bool,
}

impl TraceGen for TrustedGen {
    fn name(&self) -> &'static str {
        if self.confidential {
            "confidential"
        } else {
            "trusted"
        }
    }

    fn generate(&self, rng: &mut Rng, size: usize) -> Trace {
        let mut tr = Trace::new();
        let mut sent: Vec<Message> = Vec::new();
        let mut seq = 1u64;
        let receivers: &[ProcessId] =
            if self.confidential { &self.trusted } else { &self.everyone };
        for _ in 0..size {
            if sent.is_empty() || rng.random_bool(0.4) {
                let sender = self.trusted[pick(rng, self.trusted.len())];
                let m = Message::with_tag(sender, seq, body(rng));
                seq += 1;
                sent.push(m.clone());
                tr.push(Event::send(m));
            } else {
                let m = sent[pick(rng, sent.len())].clone();
                let p = receivers[pick(rng, receivers.len())];
                tr.push(Event::deliver(p, m));
            }
        }
        tr
    }
}

/// Traces in which no process delivers the same body twice (satisfies No
/// Replay) — bodies still collide *across* generated traces, which the
/// composability check needs.
#[derive(Debug, Clone)]
pub struct NoReplayGen {
    /// Number of processes.
    pub procs: u16,
}

impl TraceGen for NoReplayGen {
    fn name(&self) -> &'static str {
        "no-replay"
    }

    fn generate(&self, rng: &mut Rng, size: usize) -> Trace {
        let mut tr = Trace::new();
        let mut seq = 1u64;
        let mut used: std::collections::HashSet<(ProcessId, u8)> = std::collections::HashSet::new();
        let mut sent: Vec<(Message, u8)> = Vec::new();
        for _ in 0..size {
            if sent.is_empty() || rng.random_bool(0.5) {
                let s = ProcessId(pick(rng, usize::from(self.procs)) as u16);
                let b = body(rng);
                let m = Message::with_tag(s, seq, b);
                seq += 1;
                sent.push((m.clone(), b));
                tr.push(Event::send(m));
            } else {
                let (m, b) = sent[pick(rng, sent.len())].clone();
                let p = ProcessId(pick(rng, usize::from(self.procs)) as u16);
                if used.insert((p, b)) {
                    tr.push(Event::deliver(p, m));
                }
            }
        }
        tr
    }
}

/// Traces in which the master always delivers first (satisfies Prioritized
/// Delivery). Master and follower deliveries are frequently adjacent —
/// exactly the window the asynchrony rewrite exploits.
#[derive(Debug, Clone)]
pub struct PriorityGen {
    /// The master process.
    pub master: ProcessId,
    /// All processes.
    pub group: Vec<ProcessId>,
}

impl TraceGen for PriorityGen {
    fn name(&self) -> &'static str {
        "prioritized"
    }

    fn generate(&self, rng: &mut Rng, size: usize) -> Trace {
        let mut tr = Trace::new();
        let n_msgs = (size / 4).max(1);
        for i in 0..n_msgs {
            let sender = self.group[pick(rng, self.group.len())];
            let m = Message::with_tag(sender, (i + 1) as u64, body(rng));
            tr.push(Event::send(m.clone()));
            tr.push(Event::deliver(self.master, m.clone()));
            for &p in &self.group {
                if p != self.master && rng.random_bool(0.7) {
                    tr.push(Event::deliver(p, m.clone()));
                }
            }
        }
        tr
    }
}

/// Traces of send → self-deliver → send chains (satisfies Amoeba). A chain
/// sometimes ends with an outstanding (undelivered) send — the pattern
/// whose concatenation breaks composability.
#[derive(Debug, Clone)]
pub struct AmoebaGen {
    /// Number of processes.
    pub procs: u16,
}

impl TraceGen for AmoebaGen {
    fn name(&self) -> &'static str {
        "amoeba"
    }

    fn generate(&self, rng: &mut Rng, size: usize) -> Trace {
        let mut tr = Trace::new();
        let mut seq = 1u64;
        for _ in 0..(size / 3).max(1) {
            let p = ProcessId(pick(rng, usize::from(self.procs)) as u16);
            let m = Message::with_tag(p, seq, body(rng));
            seq += 1;
            tr.push(Event::send(m.clone()));
            // Usually the self-delivery arrives (other deliveries too);
            // occasionally leave the send outstanding at trace end.
            if rng.random_bool(0.8) {
                tr.push(Event::deliver(p, m.clone()));
                if rng.random_bool(0.5) {
                    let q = ProcessId(pick(rng, usize::from(self.procs)) as u16);
                    tr.push(Event::deliver(q, m));
                }
            } else {
                break; // outstanding send terminates this trace
            }
        }
        tr
    }
}

/// Causally ordered traces: messages are delivered respecting potential
/// causality (a delivery is legal once all of the message's causal
/// predecessors that the process will ever deliver are delivered — here we
/// enforce the stronger, simpler discipline: all predecessors delivered
/// first). Sends pick up the sender's causal context, so chains form.
#[derive(Debug, Clone)]
pub struct CausalGen {
    /// Number of processes.
    pub procs: u16,
}

impl TraceGen for CausalGen {
    fn name(&self) -> &'static str {
        "causal"
    }

    fn generate(&self, rng: &mut Rng, size: usize) -> Trace {
        use std::collections::{BTreeSet, HashMap};
        let mut tr = Trace::new();
        let mut seq = 1u64;
        // Per-process causal context and per-message predecessor sets.
        let mut context: HashMap<ProcessId, BTreeSet<crate::MsgId>> = HashMap::new();
        let mut preds: HashMap<crate::MsgId, BTreeSet<crate::MsgId>> = HashMap::new();
        let mut sent: Vec<Message> = Vec::new();
        let mut delivered: HashMap<ProcessId, BTreeSet<crate::MsgId>> = HashMap::new();
        for _ in 0..size {
            let p = ProcessId(pick(rng, usize::from(self.procs)) as u16);
            if sent.is_empty() || rng.random_bool(0.4) {
                let m = Message::with_tag(p, seq, body(rng));
                seq += 1;
                let ctx = context.entry(p).or_default();
                preds.insert(m.id, ctx.clone());
                ctx.insert(m.id);
                sent.push(m.clone());
                tr.push(Event::send(m));
            } else {
                // Deliver a random message whose predecessors p has already
                // delivered (or will trivially satisfy: none pending).
                let dset = delivered.entry(p).or_default();
                let eligible: Vec<&Message> = sent
                    .iter()
                    .filter(|m| {
                        !dset.contains(&m.id) && preds[&m.id].iter().all(|q| dset.contains(q))
                    })
                    .collect();
                if let Some(&m) = eligible.get(pick(rng, eligible.len().max(1))) {
                    let m = m.clone();
                    dset.insert(m.id);
                    let ctx = context.entry(p).or_default();
                    ctx.extend(preds[&m.id].iter().copied());
                    ctx.insert(m.id);
                    tr.push(Event::deliver(p, m));
                }
            }
        }
        tr
    }
}

/// Virtually synchronous traces: epochs separated by view changes, with
/// joins and leaves, every current member delivering every epoch message
/// (satisfies Virtual Synchrony).
#[derive(Debug, Clone)]
pub struct VsyncGen {
    /// View 0's membership (the group).
    pub initial: Vec<ProcessId>,
}

impl TraceGen for VsyncGen {
    fn name(&self) -> &'static str {
        "vsync"
    }

    fn generate(&self, rng: &mut Rng, size: usize) -> Trace {
        let mut tr = Trace::new();
        let mut members = self.initial.clone();
        let mut view_no = 0u64;
        let mut seq = 1u64;
        let epochs = (size / 6).max(1);
        for _ in 0..epochs {
            // A couple of data messages, delivered by every member.
            for _ in 0..rng.random_range(1..3usize) {
                if members.is_empty() {
                    break;
                }
                let sender = members[pick(rng, members.len())];
                let m = Message::with_tag(sender, seq, body(rng));
                seq += 1;
                tr.push(Event::send(m.clone()));
                for &p in &members {
                    tr.push(Event::deliver(p, m.clone()));
                }
            }
            // View change: join an absent process or drop a member.
            let absent: Vec<ProcessId> = self
                .initial
                .iter()
                .copied()
                .chain([ProcessId(self.initial.len() as u16)])
                .filter(|p| !members.contains(p))
                .collect();
            let mut next = members.clone();
            if !absent.is_empty() && (members.len() <= 1 || rng.random_bool(0.5)) {
                next.push(absent[pick(rng, absent.len())]);
            } else if members.len() > 1 {
                next.remove(pick(rng, next.len()));
            }
            view_no += 1;
            let installer = members.first().copied().unwrap_or(ProcessId(0));
            let vm = Message::view_change(installer, seq, view_no, next.clone());
            seq += 1;
            tr.push(Event::send(vm.clone()));
            for &p in &next {
                tr.push(Event::deliver(p, vm.clone()));
            }
            // Old members not in the next view simply stop delivering.
            members = next;
        }
        tr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{
        Amoeba, Confidentiality, Integrity, NoReplay, PrioritizedDelivery, Property, Reliability,
        TotalOrder, VirtualSynchrony,
    };

    fn group(n: u16) -> Vec<ProcessId> {
        (0..n).map(ProcessId).collect()
    }

    /// Every generator must actually produce traces satisfying its property.
    fn assert_satisfies(g: &dyn TraceGen, p: &dyn Property, seeds: u64) {
        for seed in 0..seeds {
            let mut rng = seeded(seed);
            for size in [4usize, 12, 30] {
                let tr = g.generate(&mut rng, size);
                assert!(tr.is_well_formed(), "{} produced ill-formed trace {tr}", g.name());
                assert!(p.holds(&tr), "{} produced a trace violating {}: {tr}", g.name(), p.name());
            }
        }
    }

    #[test]
    fn reliable_gen_satisfies_reliability() {
        let g = ReliableGen { group: group(3) };
        assert_satisfies(&g, &Reliability::new(group(3)), 30);
    }

    #[test]
    fn total_order_gen_satisfies_total_order() {
        let g = TotalOrderGen { group: group(3) };
        assert_satisfies(&g, &TotalOrder, 30);
    }

    #[test]
    fn trusted_gen_satisfies_integrity() {
        let trusted = vec![ProcessId(0), ProcessId(2)];
        let g = TrustedGen { trusted: trusted.clone(), everyone: group(4), confidential: false };
        assert_satisfies(&g, &Integrity::new(trusted), 30);
    }

    #[test]
    fn confidential_gen_satisfies_confidentiality() {
        let trusted = vec![ProcessId(0), ProcessId(2)];
        let g = TrustedGen { trusted: trusted.clone(), everyone: group(4), confidential: true };
        assert_satisfies(&g, &Confidentiality::new(trusted), 30);
    }

    #[test]
    fn no_replay_gen_satisfies_no_replay() {
        let g = NoReplayGen { procs: 3 };
        assert_satisfies(&g, &NoReplay, 30);
    }

    #[test]
    fn priority_gen_satisfies_prioritized_delivery() {
        let g = PriorityGen { master: ProcessId(0), group: group(3) };
        assert_satisfies(&g, &PrioritizedDelivery::new(ProcessId(0)), 30);
    }

    #[test]
    fn amoeba_gen_satisfies_amoeba() {
        let g = AmoebaGen { procs: 3 };
        assert_satisfies(&g, &Amoeba, 30);
    }

    #[test]
    fn vsync_gen_satisfies_virtual_synchrony() {
        let g = VsyncGen { initial: group(3) };
        assert_satisfies(&g, &VirtualSynchrony::new(group(3)), 30);
    }

    #[test]
    fn universal_gen_is_well_formed_and_varied() {
        let g = UniversalGen { procs: 3 };
        let mut rng = seeded(1);
        let a = g.generate(&mut rng, 20);
        let b = g.generate(&mut rng, 20);
        assert!(a.is_well_formed() && b.is_well_formed());
        assert_ne!(a, b);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g = ReliableGen { group: group(3) };
        let a = g.generate(&mut seeded(7), 20);
        let b = g.generate(&mut seeded(7), 20);
        assert_eq!(a, b);
    }
}
