use ps_bytes::Bytes;
use ps_wire::{Decoder, Encoder, Wire, WireError};
use std::fmt;

/// Identifier of a process in the trace model (§3).
///
/// In a live simulation this is the same number as the node's
/// `ps_simnet::NodeId`; the two types are kept distinct so the formal model
/// never accidentally depends on the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u16);

impl ProcessId {
    /// The process's position as a `usize` index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u16> for ProcessId {
    fn from(v: u16) -> Self {
        ProcessId(v)
    }
}

impl Wire for ProcessId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u16(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ProcessId(dec.get_u16()?))
    }
}

/// Globally unique message identity: the sender plus a per-sender sequence
/// number.
///
/// The paper requires traces to contain "no duplicate Send events"; message
/// identity is what makes that checkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// The process that multicast the message (`m.sender` in the paper).
    pub sender: ProcessId,
    /// Sender-local sequence number.
    pub seq: u64,
}

impl MsgId {
    /// Creates an id.
    pub fn new(sender: ProcessId, seq: u64) -> Self {
        Self { sender, seq }
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.sender, self.seq)
    }
}

impl Wire for MsgId {
    fn encode(&self, enc: &mut Encoder) {
        self.sender.encode(enc);
        enc.put_varint(self.seq);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(MsgId { sender: ProcessId::decode(dec)?, seq: dec.get_varint()? })
    }
}

/// Magic prefix marking a message body as a view-change notification.
const VIEW_MAGIC: &[u8; 4] = b"\x00VW:";

/// Contents of a view-change message body.
///
/// Virtual synchrony systems disseminate new views *as messages*; encoding
/// them this way (rather than adding a third event kind) keeps the trace
/// model exactly the paper's Send/Deliver — and is what makes the checker
/// discover that Virtual Synchrony is not Memoryless: erasing a view
/// message merges epochs differently at processes with different
/// memberships.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewInfo {
    /// Monotonically increasing view number.
    pub view_no: u64,
    /// The membership installed by this view.
    pub members: Vec<ProcessId>,
}

impl Wire for ViewInfo {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.view_no);
        self.members.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ViewInfo { view_no: dec.get_varint()?, members: Vec::decode(dec)? })
    }
}

/// A multicast message: identity plus opaque body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Message {
    /// Unique identity.
    pub id: MsgId,
    /// Payload bytes. Properties like No Replay compare *bodies*, not ids.
    pub body: Bytes,
}

impl Message {
    /// Creates an application message.
    pub fn new(sender: ProcessId, seq: u64, body: Bytes) -> Self {
        Self { id: MsgId::new(sender, seq), body }
    }

    /// Creates a message whose body is a small integer tag — convenient in
    /// tests and generators, where the tiny body alphabet makes No-Replay
    /// body collisions likely (which is exactly what its ✗ cells need).
    pub fn with_tag(sender: ProcessId, seq: u64, tag: u8) -> Self {
        Self::new(sender, seq, Bytes::copy_from_slice(&[tag]))
    }

    /// Creates a view-change message installing `members` as view
    /// `view_no`.
    pub fn view_change(sender: ProcessId, seq: u64, view_no: u64, members: Vec<ProcessId>) -> Self {
        let mut enc = Encoder::new();
        enc.put_raw(VIEW_MAGIC);
        ViewInfo { view_no, members }.encode(&mut enc);
        Self::new(sender, seq, enc.finish())
    }

    /// Parses this message as a view change, if it is one.
    pub fn as_view_change(&self) -> Option<ViewInfo> {
        let rest = self.body.strip_prefix(&VIEW_MAGIC[..])?;
        ViewInfo::from_bytes(rest).ok()
    }

    /// Returns `true` if this is a view-change message.
    pub fn is_view_change(&self) -> bool {
        self.as_view_change().is_some()
    }
}

impl Wire for Message {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        enc.put_bytes(&self.body);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Message { id: MsgId::decode(dec)?, body: Bytes::copy_from_slice(dec.get_bytes()?) })
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_view_change() {
            write!(
                f,
                "{}=view{}{:?}",
                self.id,
                v.view_no,
                v.members.iter().map(|p| p.0).collect::<Vec<_>>()
            )
        } else {
            write!(f, "{}", self.id)
        }
    }
}

/// One event of a trace: a multicast submission or a delivery (§3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// Process `m.id.sender` multicast message `m`.
    Send(Message),
    /// The named process delivered message `m`.
    Deliver(ProcessId, Message),
}

impl Event {
    /// Shorthand for a send event.
    pub fn send(m: Message) -> Self {
        Event::Send(m)
    }

    /// Shorthand for a delivery event.
    pub fn deliver(p: ProcessId, m: Message) -> Self {
        Event::Deliver(p, m)
    }

    /// The process this event "belongs to" in the sense of the asynchrony
    /// and delayable relations: the sender for a send, the delivering
    /// process for a delivery.
    pub fn process(&self) -> ProcessId {
        match self {
            Event::Send(m) => m.id.sender,
            Event::Deliver(p, _) => *p,
        }
    }

    /// The message this event pertains to.
    pub fn message(&self) -> &Message {
        match self {
            Event::Send(m) => m,
            Event::Deliver(_, m) => m,
        }
    }

    /// Returns `true` for send events.
    pub fn is_send(&self) -> bool {
        matches!(self, Event::Send(_))
    }

    /// Returns `true` for delivery events.
    pub fn is_deliver(&self) -> bool {
        matches!(self, Event::Deliver(..))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Send(m) => write!(f, "S({m})"),
            Event::Deliver(p, m) => write!(f, "D({p}:{m})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_of_event() {
        let m = Message::with_tag(ProcessId(3), 1, 0);
        assert_eq!(Event::send(m.clone()).process(), ProcessId(3));
        assert_eq!(Event::deliver(ProcessId(5), m).process(), ProcessId(5));
    }

    #[test]
    fn view_change_roundtrip() {
        let members = vec![ProcessId(0), ProcessId(2)];
        let m = Message::view_change(ProcessId(0), 9, 4, members.clone());
        assert!(m.is_view_change());
        let v = m.as_view_change().unwrap();
        assert_eq!(v.view_no, 4);
        assert_eq!(v.members, members);
    }

    #[test]
    fn ordinary_message_is_not_a_view() {
        let m = Message::with_tag(ProcessId(0), 1, 42);
        assert!(!m.is_view_change());
        assert!(m.as_view_change().is_none());
    }

    #[test]
    fn hostile_body_with_magic_prefix_is_not_a_view() {
        // Magic prefix but garbage afterwards must not parse.
        let mut body = VIEW_MAGIC.to_vec();
        body.push(0xff);
        body.extend([0xff; 30]);
        let m = Message::new(ProcessId(0), 1, Bytes::from(body));
        assert!(m.as_view_change().is_none());
    }

    #[test]
    fn display_forms() {
        let m = Message::with_tag(ProcessId(1), 2, 0);
        assert_eq!(Event::send(m.clone()).to_string(), "S(p1#2)");
        assert_eq!(Event::deliver(ProcessId(0), m).to_string(), "D(p0:p1#2)");
        let vm = Message::view_change(ProcessId(0), 1, 3, vec![ProcessId(0), ProcessId(1)]);
        assert!(vm.to_string().contains("view3"));
    }

    #[test]
    fn msgid_wire_roundtrip() {
        let id = MsgId::new(ProcessId(7), 123456);
        assert_eq!(MsgId::from_bytes(&id.to_bytes()).unwrap(), id);
    }
}
