//! The Causal Order meta-property row — an extension beyond the paper's
//! Table 2 showing (alongside Reliability) that the §6.3 class is
//! sufficient but not necessary: Causal Order fails Delayable, yet the
//! live switching protocol preserves it (see `tests/causal_switch.rs` at
//! the workspace root).

use ps_trace::check::{check_cell, CheckConfig};
use ps_trace::exhaustive::{check_cell_exhaustive, event_universe, ExhaustiveConfig};
use ps_trace::gen::{CausalGen, TraceGen};
use ps_trace::meta::MetaKind;
use ps_trace::props::{CausalOrder, Property};
use ps_trace::{Message, ProcessId};

/// Columns in MetaKind::ALL order: Safety, Asynchronous, Send Enabled,
/// Delayable, Memoryless, Composable.
const EXPECTED: [bool; 6] = [true, true, true, false, true, true];

#[test]
fn causal_gen_produces_satisfying_traces() {
    let g = CausalGen { procs: 3 };
    let mut rng = ps_trace::gen::seeded(5);
    for _ in 0..50 {
        let tr = g.generate(&mut rng, 24);
        assert!(tr.is_well_formed());
        assert!(CausalOrder.holds(&tr), "{tr}");
    }
}

#[test]
fn causal_row_randomized() {
    let g = CausalGen { procs: 3 };
    let gens: [&dyn TraceGen; 1] = [&g];
    let cfg = CheckConfig::quick();
    for (&meta, &want) in MetaKind::ALL.iter().zip(&EXPECTED) {
        let v = check_cell(&CausalOrder, meta, &gens, &cfg);
        assert_eq!(
            v.preserved,
            want,
            "Causal Order / {meta}: {}",
            v.counterexample.map(|c| c.to_string()).unwrap_or_else(|| "no witness".into())
        );
    }
}

#[test]
fn causal_row_exhaustive() {
    // Three messages over three processes: enough for a reply chain.
    let universe = event_universe(
        3,
        &[
            Message::with_tag(ProcessId(0), 1, 1),
            Message::with_tag(ProcessId(1), 1, 2),
            Message::with_tag(ProcessId(2), 1, 3),
        ],
    );
    let cfg = ExhaustiveConfig { max_len: 4, ..ExhaustiveConfig::default() };
    for (&meta, &want) in MetaKind::ALL.iter().zip(&EXPECTED) {
        let v = check_cell_exhaustive(&CausalOrder, meta, &universe, &cfg);
        assert_eq!(
            v.preserved,
            want,
            "Causal Order / {meta} (exhaustive): {}",
            v.counterexample.map(|c| c.to_string()).unwrap_or_else(|| "no witness".into())
        );
    }
}
