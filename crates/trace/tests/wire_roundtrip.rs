//! Wire round-trips for the trace model types carried between layers.

use ps_bytes::Bytes;
use ps_check::prelude::*;
use ps_trace::{Message, MsgId, ProcessId, ViewInfo};
use ps_wire::Wire;

props! {
    fn message_roundtrip(
        sender in arb::<u16>(),
        seq in arb::<u64>(),
        body in vec_of(arb::<u8>(), 0..256),
    ) {
        let m = Message::new(ProcessId(sender), seq, Bytes::from(body));
        assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    fn msgid_roundtrip(sender in arb::<u16>(), seq in arb::<u64>()) {
        let id = MsgId::new(ProcessId(sender), seq);
        assert_eq!(MsgId::from_bytes(&id.to_bytes()).unwrap(), id);
    }

    fn view_info_roundtrip(view_no in arb::<u64>(), members in vec_of(arb::<u16>(), 0..16)) {
        let v = ViewInfo { view_no, members: members.into_iter().map(ProcessId).collect() };
        assert_eq!(ViewInfo::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    fn view_change_survives_wire(
        sender in arb::<u16>(),
        seq in arb::<u64>(),
        view_no in arb::<u64>(),
    ) {
        let m = Message::view_change(ProcessId(sender), seq, view_no, vec![ProcessId(0), ProcessId(3)]);
        let back = Message::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.as_view_change().unwrap().view_no, view_no);
    }
}
