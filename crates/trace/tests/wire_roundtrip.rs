//! Wire round-trips for the trace model types carried between layers.

use bytes::Bytes;
use proptest::prelude::*;
use ps_trace::{Message, MsgId, ProcessId, ViewInfo};
use ps_wire::Wire;

proptest! {
    #[test]
    fn message_roundtrip(sender in any::<u16>(), seq in any::<u64>(), body in proptest::collection::vec(any::<u8>(), 0..256)) {
        let m = Message::new(ProcessId(sender), seq, Bytes::from(body));
        prop_assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn msgid_roundtrip(sender in any::<u16>(), seq in any::<u64>()) {
        let id = MsgId::new(ProcessId(sender), seq);
        prop_assert_eq!(MsgId::from_bytes(&id.to_bytes()).unwrap(), id);
    }

    #[test]
    fn view_info_roundtrip(view_no in any::<u64>(), members in proptest::collection::vec(any::<u16>(), 0..16)) {
        let v = ViewInfo { view_no, members: members.into_iter().map(ProcessId).collect() };
        prop_assert_eq!(ViewInfo::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn view_change_survives_wire(sender in any::<u16>(), seq in any::<u64>(), view_no in any::<u64>()) {
        let m = Message::view_change(ProcessId(sender), seq, view_no, vec![ProcessId(0), ProcessId(3)]);
        let back = Message::from_bytes(&m.to_bytes()).unwrap();
        prop_assert_eq!(back.as_view_change().unwrap().view_no, view_no);
    }
}
