//! End-to-end check of the regenerated Table 2.
//!
//! The expected matrix below is the reconstruction documented in DESIGN.md:
//! the prose-pinned cells (§5–§6) plus the cells derived from the
//! definitions. Every ✗ must come with a concrete counterexample; every
//! paper-pinned cell must agree with the checker.

use ps_trace::check::{table2, CheckConfig, Provenance};
use ps_trace::meta::MetaKind;

/// Expected matrix, rows in `property_gens` order, columns in
/// `MetaKind::ALL` order: Safety, Asynchronous, Send Enabled, Delayable,
/// Memoryless, Composable.
const EXPECTED: &[(&str, [bool; 6])] = &[
    ("Reliability", [false, true, false, true, true, true]),
    ("Total Order", [true, true, true, true, true, true]),
    ("Integrity", [true, true, true, true, true, true]),
    ("Confidentiality", [true, true, true, true, true, true]),
    ("No Replay", [true, true, true, true, true, false]),
    ("Prioritized Delivery", [true, false, true, true, true, true]),
    ("Amoeba", [true, true, false, false, true, false]),
    ("Virtual Synchrony", [true, true, true, true, false, false]),
];

#[test]
fn regenerated_table2_matches_reconstruction() {
    let rows = table2(4, &CheckConfig::quick());
    assert_eq!(rows.len(), EXPECTED.len());
    let mut failures = Vec::new();
    for (row, (name, expected)) in rows.iter().zip(EXPECTED) {
        assert_eq!(&row.property, name);
        for (cell, (&want, &meta)) in row.cells.iter().zip(expected.iter().zip(&MetaKind::ALL)) {
            if cell.verdict.preserved != want {
                let cx = cell
                    .verdict
                    .counterexample
                    .as_ref()
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "none (no counterexample found)".into());
                failures.push(format!(
                    "{name} / {meta}: got {}, expected {} — counterexample: {cx}",
                    cell.verdict.preserved, want
                ));
            }
        }
    }
    assert!(failures.is_empty(), "matrix mismatches:\n{}", failures.join("\n"));
}

#[test]
fn paper_pinned_cells_agree_and_are_labelled() {
    let rows = table2(4, &CheckConfig::quick());
    let mut paper_cells = 0;
    for row in &rows {
        for cell in &row.cells {
            match cell.provenance {
                Provenance::Paper => {
                    paper_cells += 1;
                    assert!(
                        !cell.disagrees_with_paper(),
                        "{} / {} disagrees with the paper's prose",
                        row.property,
                        cell.verdict.meta
                    );
                }
                Provenance::Derived => assert!(cell.paper_value.is_none()),
            }
        }
    }
    assert_eq!(paper_cells, 25, "all 25 prose-pinned cells must be labelled");
}

#[test]
fn every_negative_cell_carries_a_witness() {
    let rows = table2(4, &CheckConfig::quick());
    for row in &rows {
        for cell in &row.cells {
            if !cell.verdict.preserved {
                let cx = cell.verdict.counterexample.as_ref().unwrap_or_else(|| {
                    panic!("{} / {} is ✗ without witness", row.property, cell.verdict.meta)
                });
                assert!(!cx.above.is_well_formed() || cx.above.is_well_formed());
                assert!(
                    cx.above.len()
                        <= cx.below.len() + cx.second_below.as_ref().map_or(6, |t| t.len())
                );
            }
        }
    }
}
