//! Bounded model checking of Table 2: every well-formed trace over small
//! event universes, every rewrite in each relation's closure. Within the
//! bound, ✓ cells are *verified*, not just sampled — the closest this
//! reproduction gets to the paper's Nuprl proofs.

use ps_trace::exhaustive::{check_cell_exhaustive, event_universe, ExhaustiveConfig};
use ps_trace::meta::MetaKind;
use ps_trace::props::{
    Amoeba, Confidentiality, Integrity, NoReplay, PrioritizedDelivery, Property, Reliability,
    TotalOrder, VirtualSynchrony,
};
use ps_trace::{Event, Message, ProcessId};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

/// Data universe: two processes; m1/m3 from p0 (m3 enables consecutive
/// same-sender sends for Amoeba), m2 from p1; m1 and m2 share a body (the
/// No-Replay composition trap).
fn data_universe() -> Vec<Event> {
    event_universe(
        2,
        &[
            Message::with_tag(p(0), 1, 7),
            Message::with_tag(p(1), 1, 7),
            Message::with_tag(p(0), 2, 9),
        ],
    )
}

/// Checks one property row exhaustively against the expected six cells.
fn assert_row(
    prop: &dyn Property,
    universe: &[Event],
    cfg: &ExhaustiveConfig,
    expected: [bool; 6],
) {
    for (&meta, &want) in MetaKind::ALL.iter().zip(&expected) {
        let v = check_cell_exhaustive(prop, meta, universe, cfg);
        assert_eq!(
            v.preserved,
            want,
            "{} / {meta}: expected {want}; counterexample: {}",
            prop.name(),
            v.counterexample.map(|c| c.to_string()).unwrap_or_else(|| "none".into()),
        );
    }
}

// Columns: Safety, Asynchronous, Send Enabled, Delayable, Memoryless, Composable.

#[test]
fn reliability_row_exhaustive() {
    let cfg = ExhaustiveConfig { max_len: 4, ..ExhaustiveConfig::default() };
    assert_row(
        &Reliability::new([p(0), p(1)]),
        &data_universe(),
        &cfg,
        [false, true, false, true, true, true],
    );
}

#[test]
fn total_order_row_exhaustive() {
    let cfg = ExhaustiveConfig { max_len: 5, ..ExhaustiveConfig::default() };
    assert_row(&TotalOrder, &data_universe(), &cfg, [true; 6]);
}

#[test]
fn integrity_row_exhaustive() {
    let cfg = ExhaustiveConfig {
        max_len: 5,
        // Extensions may come from the untrusted process too — sends are
        // unconstrained, only deliveries are checked.
        ..ExhaustiveConfig::default()
    };
    assert_row(&Integrity::new([p(0)]), &data_universe(), &cfg, [true; 6]);
}

#[test]
fn confidentiality_row_exhaustive() {
    let cfg = ExhaustiveConfig { max_len: 5, ..ExhaustiveConfig::default() };
    assert_row(&Confidentiality::new([p(0)]), &data_universe(), &cfg, [true; 6]);
}

#[test]
fn no_replay_row_exhaustive() {
    let cfg = ExhaustiveConfig { max_len: 4, ..ExhaustiveConfig::default() };
    assert_row(&NoReplay, &data_universe(), &cfg, [true, true, true, true, true, false]);
}

#[test]
fn prioritized_delivery_row_exhaustive() {
    let cfg = ExhaustiveConfig { max_len: 4, ..ExhaustiveConfig::default() };
    assert_row(
        &PrioritizedDelivery::new(p(0)),
        &data_universe(),
        &cfg,
        [true, false, true, true, true, true],
    );
}

#[test]
fn amoeba_row_exhaustive() {
    let cfg = ExhaustiveConfig { max_len: 4, ..ExhaustiveConfig::default() };
    assert_row(&Amoeba, &data_universe(), &cfg, [true, true, false, false, true, false]);
}

#[test]
fn virtual_synchrony_row_exhaustive() {
    // Universe with view dynamics: v1 drops p1 and admits p2 (sent by p0);
    // d is data from the joiner p2; e is data from the soon-dropped p1.
    let universe = event_universe(
        3,
        &[
            Message::view_change(p(0), 50, 1, vec![p(0), p(2)]),
            Message::with_tag(p(2), 1, 3),
            Message::with_tag(p(1), 1, 4),
        ],
    );
    let prop = VirtualSynchrony::new([p(0), p(1)]);
    let cfg = ExhaustiveConfig { max_len: 4, ..ExhaustiveConfig::default() };
    assert_row(&prop, &universe, &cfg, [true, true, true, true, false, false]);
}
