//! Property-based tests over the rewrite relations and predicates.

use ps_check::prelude::*;
use ps_trace::gen::{seeded, TraceGen, UniversalGen};
use ps_trace::meta::{
    async_steps, async_swap_sites, compose_disjoint, delayable_steps, erase_random_subset,
    prefixes, send_extension, single_erasures, swap_walk,
};
use ps_trace::props::{standard_suite, NoReplay, Property};
use ps_trace::{Event, Trace};
use std::collections::BTreeSet;

fn arb_trace() -> impl Gen<Value = Trace> {
    (arb::<u64>(), 2u16..5, 1usize..40)
        .prop_map(|(seed, procs, size)| UniversalGen { procs }.generate(&mut seeded(seed), size))
}

/// A delivery preceded by its send below must stay preceded above.
fn causality_ok(tr: &Trace) -> bool {
    let all_sent = tr.sent_ids();
    let mut seen = BTreeSet::new();
    for e in tr.iter() {
        match e {
            Event::Send(m) => {
                seen.insert(m.id);
            }
            Event::Deliver(_, m) => {
                if all_sent.contains(&m.id) && !seen.contains(&m.id) {
                    return false;
                }
            }
        }
    }
    true
}

props! {
    fn rewrites_preserve_well_formedness(tr in arb_trace(), seed in arb::<u64>()) {
        let mut rng = seeded(seed);
        for above in prefixes(&tr) {
            assert!(above.is_well_formed());
        }
        for above in async_steps(&tr).into_iter().chain(delayable_steps(&tr)) {
            assert!(above.is_well_formed());
        }
        for above in single_erasures(&tr) {
            assert!(above.is_well_formed());
        }
        assert!(send_extension(&tr, 3, &mut rng).is_well_formed());
        assert!(erase_random_subset(&tr, &mut rng).is_well_formed());
        assert!(compose_disjoint(&tr, &tr).is_well_formed());
    }

    fn swap_relations_never_invert_causality(tr in arb_trace(), seed in arb::<u64>()) {
        // UniversalGen emits sends before deliveries, so causality holds below.
        assert!(causality_ok(&tr));
        let mut rng = seeded(seed);
        for above in async_steps(&tr).into_iter().chain(delayable_steps(&tr)) {
            assert!(causality_ok(&above), "{above}");
        }
        for above in swap_walk(&tr, async_swap_sites, 16, &mut rng) {
            assert!(causality_ok(&above), "{above}");
        }
    }

    fn swaps_preserve_event_multiset(tr in arb_trace()) {
        let count = |t: &Trace| {
            let mut v: Vec<String> = t.iter().map(|e| e.to_string()).collect();
            v.sort();
            v
        };
        let below = count(&tr);
        for above in async_steps(&tr).into_iter().chain(delayable_steps(&tr)) {
            assert_eq!(count(&above), below.clone());
        }
    }

    fn erasure_is_idempotent_per_subset(tr in arb_trace(), seed in arb::<u64>()) {
        let mut rng = seeded(seed);
        let erased = erase_random_subset(&tr, &mut rng);
        // Erasing the same ids again changes nothing.
        let ids: BTreeSet<_> = tr.message_ids().difference(&erased.message_ids()).copied().collect();
        assert_eq!(erased.erase_messages(&ids), erased);
    }

    fn compose_disjoint_components_are_disjoint(a in arb_trace(), b in arb_trace()) {
        let composed = compose_disjoint(&a, &b);
        assert_eq!(composed.len(), a.len() + b.len());
        // First half ids and remapped second half ids do not overlap.
        assert!(composed.is_well_formed() || !a.is_well_formed() || !b.is_well_formed());
    }

    fn predicates_are_deterministic(tr in arb_trace()) {
        for p in standard_suite(5) {
            assert_eq!(p.holds(&tr), p.holds(&tr.clone()));
        }
    }

    fn safety_props_are_prefix_closed_on_satisfying_traces(tr in arb_trace()) {
        // Every property our reconstruction marks Safe must be prefix-closed.
        for p in standard_suite(5) {
            if p.name() == "Reliability" {
                continue; // the one non-safe property
            }
            if p.holds(&tr) {
                for pre in prefixes(&tr) {
                    assert!(p.holds(&pre), "{} broken by prefix of {tr}", p.name());
                }
            }
        }
    }

    fn no_replay_violations_survive_extension(tr in arb_trace(), seed in arb::<u64>()) {
        // ¬P is stable under appending sends for No Replay (dual sanity).
        if !NoReplay.holds(&tr) {
            let mut rng = seeded(seed);
            assert!(!NoReplay.holds(&send_extension(&tr, 2, &mut rng)));
        }
    }
}
