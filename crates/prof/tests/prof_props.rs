//! Property tests for the span-stack profiler's panic safety: RAII
//! guards must well-nest even when the observed region unwinds, and the
//! profiler must stay usable afterwards (poison-proof locks).

use ps_check::prelude::*;
use ps_prof::Profiler;

/// Opens `depth` nested spans (distinct fixed paths, so counts are
/// checkable per level) and panics at `panic_at` (if within range).
/// Returns the number of guards that were created before unwinding.
fn nest_and_maybe_panic(prof: &Profiler, depth: usize, panic_at: usize) -> usize {
    const LEVELS: [&[&'static str]; 8] = [
        &["engine", "dispatch"],
        &["engine", "wheel", "push"],
        &["engine", "wheel", "pop"],
        &["engine", "transmit"],
        &["stack", "layer"],
        &["obs", "record"],
        &["obs", "sinks", "monitors"],
        &["driver", "epoch"],
    ];
    fn rec(prof: &Profiler, levels: &[&[&'static str]], panic_at: usize, at: usize) {
        let Some((first, rest)) = levels.split_first() else { return };
        let _guard = prof.span(first);
        assert!(at != panic_at, "seeded panic at depth {at}");
        rec(prof, rest, panic_at, at + 1);
    }
    rec(prof, &LEVELS[..depth], panic_at, 0);
    depth
}

props! {
    #![config(cases = 48)]

    /// A panic anywhere inside a nest of spans unwinds every guard in
    /// stack order: afterwards the live stack is empty (new spans get
    /// full credit), every opened span was counted exactly once, and
    /// the exclusive times still partition the root total exactly.
    fn spans_well_nest_across_panics(depth in 1usize..9, cut in arb::<u64>()) {
        let prof = Profiler::enabled();
        let panic_at = (cut % (depth as u64 + 1)) as usize; // == depth ⇒ no panic
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _root = prof.span(&[]);
            nest_and_maybe_panic(&prof, depth, panic_at);
        }));
        assert_eq!(result.is_err(), panic_at < depth);

        // Every guard that was opened — including the ones unwound by
        // the panic — exited exactly once. The deepest `depth -
        // min(panic_at+1, depth)` levels were never opened.
        let opened = if panic_at < depth { panic_at + 1 } else { depth };
        let rows = prof.rows();
        let entered: u64 = rows.iter().filter(|r| !r.path.is_empty()).map(|r| r.enters).sum();
        assert_eq!(entered as usize, opened);

        // The root span itself unwound cleanly too, and the exclusive
        // times of everything that ran inside it partition its total
        // exactly — a leaked live frame would siphon child credit and
        // break the equality.
        assert_eq!(rows[0].enters, 1);
        let self_sum: u64 = rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(self_sum, rows[0].total_ns);

        // Stack is empty and the lock unpoisoned: a fresh span still
        // records.
        {
            let _again = prof.span(&["engine", "dispatch"]);
        }
        let entered_after: u64 =
            prof.rows().iter().filter(|r| !r.path.is_empty()).map(|r| r.enters).sum();
        assert_eq!(entered_after as usize, opened + 1);
    }
}
