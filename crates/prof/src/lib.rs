//! # ps-prof
//!
//! An in-engine host-time profiler for the protocol-switching workspace:
//! a sampling-free span-stack [`Profiler`] that attributes host
//! wall-clock time to named engine components (timing-wheel ops, medium
//! transmit, per-layer handler execution, recorder and sink dispatch,
//! ShardedSim epoch machinery) via RAII [`Span`] guards.
//!
//! The design splits every measurement into two halves:
//!
//! - a **deterministic structural side** — the span tree shape, enter
//!   counts, and the virtual time covered — which is golden-testable and
//!   byte-identical across the serial, parallel, and sharded drivers
//!   ([`Profiler::structure`]), and
//! - **nondeterministic nanosecond totals**, exported as a per-component
//!   cost table ([`Profiler::rows`]), a collapsed-stack flamegraph
//!   ([`Profiler::flamegraph`], `inferno`-compatible text), and a
//!   self-describing JSON summary ([`Profiler::json_summary`]).
//!
//! ## The contract
//!
//! - **Disabled means free.** [`Profiler::span`] on a disabled profiler
//!   is one predictable branch; hosts cache [`Profiler::is_enabled`]
//!   into a plain bool so hot paths don't even touch the atomic. With
//!   the `prof` cargo feature off, span entry compiles away entirely —
//!   the same two-level gate as ps-obs's `tap`.
//! - **Fixed paths, dynamic timing.** A span names its *absolute* path
//!   in the component tree (`&["engine", "dispatch"]`), independent of
//!   what happens to be on the live stack — so the tree shape is a
//!   stable vocabulary, not an artifact of call nesting. Timing still
//!   follows the live stack: when a span exits, its elapsed time is
//!   charged to the span *beneath it on the stack*, so self-times are
//!   disjoint and sum to the root's total.
//! - **Panic-safe nesting.** Guards are plain RAII; unwinding drops them
//!   in reverse order, so the live stack always well-nests and the
//!   internal locks are poison-proof.
//!
//! ```
//! use ps_prof::Profiler;
//!
//! let prof = Profiler::enabled();
//! {
//!     let _run = prof.span(&[]); // the implicit root, named "run"
//!     let _d = prof.span(&["engine", "dispatch"]);
//! }
//! assert_eq!(prof.rows().iter().filter(|r| r.path == "engine/dispatch").count(), 1);
//! assert!(prof.structure().contains("engine/dispatch 1"));
//! ```

#![deny(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Root component name (the implicit ancestor of every span path).
const ROOT: &str = "run";

/// One node of the component tree.
#[derive(Debug, Clone)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    /// Completed entries (counted on exit, so a panic that unwinds the
    /// guard still counts).
    enters: u64,
    /// Wall time from enter to exit, summed over entries.
    total_ns: u64,
    /// `total_ns` minus time spent in spans stacked above this one.
    self_ns: u64,
}

impl Node {
    fn new(name: &'static str) -> Self {
        Self { name, children: Vec::new(), enters: 0, total_ns: 0, self_ns: 0 }
    }
}

/// A live (entered, not yet exited) span on the stack.
#[derive(Debug)]
struct Live {
    node: usize,
    start: Instant,
    /// Nanoseconds already attributed to spans that ran above this one.
    child_ns: u64,
}

#[derive(Debug)]
struct Core {
    nodes: Vec<Node>,
    stack: Vec<Live>,
    sim_us: u64,
}

impl Core {
    fn new() -> Self {
        Self { nodes: vec![Node::new(ROOT)], stack: Vec::new(), sim_us: 0 }
    }

    /// Finds or creates the node at `path` (absolute, root-relative).
    fn locate(&mut self, path: &[&'static str]) -> usize {
        let mut at = 0usize;
        for seg in path {
            let found =
                self.nodes[at].children.iter().copied().find(|&c| self.nodes[c].name == *seg);
            at = match found {
                Some(c) => c,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node::new(seg));
                    self.nodes[at].children.push(idx);
                    idx
                }
            };
        }
        at
    }

    /// Depth-first walk: calls `f(path, node)` for every node, root
    /// included (root's path is the empty string).
    fn walk(&self, f: &mut dyn FnMut(&str, &Node)) {
        fn rec(core: &Core, at: usize, prefix: &str, f: &mut dyn FnMut(&str, &Node)) {
            f(prefix, &core.nodes[at]);
            for &c in &core.nodes[at].children {
                let name = core.nodes[c].name;
                let path =
                    if prefix.is_empty() { name.to_owned() } else { format!("{prefix}/{name}") };
                rec(core, c, &path, f);
            }
        }
        rec(self, 0, "", f);
    }
}

#[derive(Debug)]
struct Shared {
    enabled: AtomicBool,
    core: Mutex<Core>,
}

/// One flattened component-table row (see [`Profiler::rows`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// `/`-joined absolute path; the root is the empty string.
    pub path: String,
    /// Completed span entries.
    pub enters: u64,
    /// Inclusive wall time.
    pub total_ns: u64,
    /// Exclusive wall time (total minus stacked-above spans).
    pub self_ns: u64,
}

/// A clonable handle to one profiler (one per execution lane — the
/// sharded driver gives each shard its own and merges with
/// [`Profiler::absorb`]).
#[derive(Debug, Clone)]
pub struct Profiler {
    inner: Arc<Shared>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::disabled()
    }
}

/// RAII span guard returned by [`Profiler::span`]; exiting (dropping)
/// charges the elapsed time. Guards on a disabled profiler hold nothing
/// and drop for free.
#[derive(Debug)]
pub struct Span<'a> {
    prof: Option<&'a Profiler>,
    node: usize,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(p) = self.prof {
            p.exit(self.node);
        }
    }
}

/// Like [`Span`], but owns an `Arc` clone of its profiler. For call
/// sites that cannot keep a borrow of the profiler alive while the
/// guard exists (the stack gets its profiler from a `&mut` environment
/// it must hand back to the layer handler).
#[derive(Debug)]
pub struct OwnedSpan {
    prof: Option<Profiler>,
    node: usize,
}

impl Drop for OwnedSpan {
    fn drop(&mut self) {
        if let Some(p) = &self.prof {
            p.exit(self.node);
        }
    }
}

impl Profiler {
    /// A detached profiler: spans are one-branch no-ops until
    /// [`Profiler::set_enabled`] turns it on.
    pub fn disabled() -> Self {
        Self {
            inner: Arc::new(Shared {
                enabled: AtomicBool::new(false),
                core: Mutex::new(Core::new()),
            }),
        }
    }

    /// A recording profiler.
    pub fn enabled() -> Self {
        let p = Self::disabled();
        p.set_enabled(true);
        p
    }

    /// Turns recording on or off. With the `prof` cargo feature off this
    /// is a no-op and the profiler stays permanently disabled.
    pub fn set_enabled(&self, on: bool) {
        #[cfg(feature = "prof")]
        self.inner.enabled.store(on, Ordering::SeqCst);
        #[cfg(not(feature = "prof"))]
        let _ = on;
    }

    /// Whether spans currently record. Hosts on hot paths should cache
    /// this into a plain bool (the recorder pattern).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "prof")]
        return self.inner.enabled.load(Ordering::Relaxed);
        #[cfg(not(feature = "prof"))]
        false
    }

    /// Poison-proof lock: a panic inside an observed region must not
    /// wedge the profiler (guards keep dropping during unwind).
    fn core(&self) -> MutexGuard<'_, Core> {
        self.inner.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enters the span at absolute `path` (empty slice = the root
    /// "run"). Returns a guard; dropping it exits the span.
    #[inline]
    pub fn span(&self, path: &[&'static str]) -> Span<'_> {
        #[cfg(feature = "prof")]
        {
            if self.is_enabled() {
                return self.enter(path);
            }
        }
        let _ = path;
        Span { prof: None, node: 0 }
    }

    #[cfg(feature = "prof")]
    fn enter(&self, path: &[&'static str]) -> Span<'_> {
        let mut core = self.core();
        let node = core.locate(path);
        core.stack.push(Live { node, start: Instant::now(), child_ns: 0 });
        Span { prof: Some(self), node }
    }

    /// [`Profiler::span`] with a guard that holds its own handle clone
    /// instead of borrowing `self`.
    #[inline]
    pub fn owned_span(&self, path: &[&'static str]) -> OwnedSpan {
        #[cfg(feature = "prof")]
        {
            if self.is_enabled() {
                let mut core = self.core();
                let node = core.locate(path);
                core.stack.push(Live { node, start: Instant::now(), child_ns: 0 });
                drop(core);
                return OwnedSpan { prof: Some(self.clone()), node };
            }
        }
        let _ = path;
        OwnedSpan { prof: None, node: 0 }
    }

    fn exit(&self, node: usize) {
        let mut core = self.core();
        let Some(live) = core.stack.pop() else { return };
        debug_assert_eq!(live.node, node, "span guards must drop in stack order");
        let elapsed = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let n = &mut core.nodes[live.node];
        n.enters += 1;
        n.total_ns += elapsed;
        n.self_ns += elapsed.saturating_sub(live.child_ns);
        if let Some(below) = core.stack.last_mut() {
            below.child_ns += elapsed;
        }
    }

    /// Records the highest virtual time this profiler's run covered
    /// (kept as a max, so shard merges and repeated runs compose).
    pub fn note_sim_us(&self, us: u64) {
        let mut core = self.core();
        core.sim_us = core.sim_us.max(us);
    }

    /// Drains `other` into `self`: every node's counts are summed in
    /// by path, `other`'s counters reset to zero (so repeated
    /// `run_until` calls never double-count), and the drained top-level
    /// time is credited to whatever span is currently live on `self` —
    /// shard work happened *inside* the caller's enclosing span, and
    /// must not inflate its self-time.
    pub fn absorb(&self, other: &Profiler) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let mut dst = self.core();
        let mut src = other.core();
        // Exclusive times are disjoint and partition everything `other`
        // measured, so their sum is exactly the wall time being drained.
        let drained_ns: u64 = src.nodes.iter().map(|n| n.self_ns).sum();
        // Copy-merge by path, then zero the source.
        fn rec(src: &mut Core, at: usize, path: &mut Vec<&'static str>, dst: &mut Core) {
            if at != 0 {
                let (enters, total, selfn) = {
                    let n = &src.nodes[at];
                    (n.enters, n.total_ns, n.self_ns)
                };
                let d = dst.locate(path);
                dst.nodes[d].enters += enters;
                dst.nodes[d].total_ns += total;
                dst.nodes[d].self_ns += selfn;
                let n = &mut src.nodes[at];
                n.enters = 0;
                n.total_ns = 0;
                n.self_ns = 0;
            }
            let children = src.nodes[at].children.clone();
            for c in children {
                path.push(src.nodes[c].name);
                rec(src, c, path, dst);
                path.pop();
            }
        }
        let mut path = Vec::new();
        rec(&mut src, 0, &mut path, &mut dst);
        dst.sim_us = dst.sim_us.max(src.sim_us);
        if let Some(live) = dst.stack.last_mut() {
            live.child_ns += drained_ns;
        }
    }

    /// The deterministic structural side: one `path enters` line per
    /// entered component, lexicographically sorted, plus the covered
    /// virtual time. Paths under `driver/` are excluded — they describe
    /// *how* a run was driven (epoch machinery, replay), which the
    /// cross-driver byte-identity contract deliberately ignores — and so
    /// is `engine/sample`: load sampling rides the clock cadence, and
    /// each shard samples its own window, so its enter count scales with
    /// the shard count rather than the workload. The root's line (if
    /// entered) is `run N`.
    pub fn structure(&self) -> String {
        let core = self.core();
        let mut lines = Vec::new();
        core.walk(&mut |path, node| {
            if node.enters == 0 || path.starts_with("driver") || path == "engine/sample" {
                return;
            }
            let shown = if path.is_empty() { ROOT } else { path };
            lines.push(format!("{shown} {}", node.enters));
        });
        lines.sort();
        lines.push(format!("sim_us {}", core.sim_us));
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Every component node, flattened and sorted by path (root first,
    /// with the empty path). Interior nodes that were named in a path
    /// but never entered themselves appear with `enters == 0`.
    pub fn rows(&self) -> Vec<Row> {
        let core = self.core();
        let mut rows = Vec::new();
        core.walk(&mut |path, node| {
            rows.push(Row {
                path: path.to_owned(),
                enters: node.enters,
                total_ns: node.total_ns,
                self_ns: node.self_ns,
            });
        });
        rows.sort_by(|a, b| a.path.cmp(&b.path));
        rows
    }

    /// Total measured wall time (the root span's inclusive time; zero
    /// if the caller never wrapped the run in a root span).
    pub fn total_ns(&self) -> u64 {
        self.core().nodes[0].total_ns
    }

    /// Wall time not attributed to any named component (the root's
    /// exclusive time — reported as `other`).
    pub fn other_ns(&self) -> u64 {
        self.core().nodes[0].self_ns
    }

    /// Covered virtual time in microseconds.
    pub fn sim_us(&self) -> u64 {
        self.core().sim_us
    }

    /// Fraction of the measured run attributed to named components, in
    /// `[0, 1]`; `1.0` when nothing was measured.
    pub fn attributed_fraction(&self) -> f64 {
        let core = self.core();
        let total = core.nodes[0].total_ns;
        if total == 0 {
            return 1.0;
        }
        1.0 - (core.nodes[0].self_ns as f64 / total as f64)
    }

    /// Collapsed-stack flamegraph text (`inferno` / `flamegraph.pl`
    /// compatible): one `run;a;b self_ns` line per entered component,
    /// sorted. Self-times are disjoint by construction, so the rendered
    /// widths are exact.
    pub fn flamegraph(&self) -> String {
        let core = self.core();
        let mut lines = Vec::new();
        core.walk(&mut |path, node| {
            if node.enters == 0 {
                return;
            }
            let stack = if path.is_empty() {
                ROOT.to_owned()
            } else {
                format!("{ROOT};{}", path.replace('/', ";"))
            };
            lines.push(format!("{stack} {}", node.self_ns));
        });
        lines.sort();
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Self-describing single-line JSON summary (nondeterministic ns
    /// totals plus the deterministic structure), suitable for embedding
    /// in a run-ledger row.
    pub fn json_summary(&self) -> String {
        let rows = self.rows();
        let core = self.core();
        let total = core.nodes[0].total_ns;
        let other = core.nodes[0].self_ns;
        let sim_us = core.sim_us;
        drop(core);
        let attributed =
            if total == 0 { 100.0 } else { 100.0 * (1.0 - other as f64 / total as f64) };
        let mut out = format!(
            "{{\"kind\":\"ps-prof\",\"v\":1,\"total_ns\":{total},\"other_ns\":{other},\"attributed_pct\":{attributed:.1},\"sim_us\":{sim_us},\"spans\":["
        );
        let mut first = true;
        for r in rows.iter().filter(|r| !r.path.is_empty()) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"enters\":{},\"total_ns\":{},\"self_ns\":{}}}",
                r.path, r.enters, r.total_ns, r.self_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        {
            let _a = p.span(&["engine", "dispatch"]);
        }
        assert_eq!(p.rows().len(), 1); // just the (un-entered) root
        assert_eq!(p.structure(), "sim_us 0\n");
        assert_eq!(p.total_ns(), 0);
        assert_eq!(p.attributed_fraction(), 1.0);
    }

    #[test]
    fn fixed_paths_are_independent_of_call_nesting() {
        let p = Profiler::enabled();
        {
            let _root = p.span(&[]);
            let _a = p.span(&["engine", "dispatch"]);
            // Entered while dispatch is live, but lands at its own
            // absolute path, not under engine/dispatch.
            let _b = p.span(&["obs", "record"]);
        }
        let rows = p.rows();
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["", "engine", "engine/dispatch", "obs", "obs/record"]);
        // "engine" exists as an interior node but was never entered
        // itself. Interior nodes only appear in rows once entered or as
        // ancestors; enters stays 0.
        let engine = &p.rows()[1];
        assert_eq!(engine.enters, 0);
    }

    #[test]
    fn self_times_are_disjoint_and_sum_to_total() {
        let p = Profiler::enabled();
        {
            let _root = p.span(&[]);
            for _ in 0..10 {
                let _a = p.span(&["engine", "dispatch"]);
                let _b = p.span(&["stack", "layer"]);
                std::hint::black_box(0u64);
            }
        }
        let rows = p.rows();
        let total = p.total_ns();
        let self_sum: u64 = rows.iter().map(|r| r.self_ns).sum();
        assert!(total > 0);
        // Exclusive times partition the root total exactly (all
        // arithmetic is on the same monotonic samples).
        assert_eq!(self_sum, total);
        assert!(p.attributed_fraction() <= 1.0);
    }

    #[test]
    fn structure_counts_enters_and_sorts() {
        let p = Profiler::enabled();
        for _ in 0..3 {
            let _a = p.span(&["engine", "wheel", "pop"]);
        }
        {
            let _d = p.span(&["driver", "epoch"]);
        }
        p.note_sim_us(500);
        assert_eq!(p.structure(), "engine/wheel/pop 3\nsim_us 500\n");
    }

    #[test]
    fn absorb_sums_counts_resets_source_and_credits_live_span() {
        let a = Profiler::enabled();
        let b = Profiler::enabled();
        {
            // Model the sharded driver: the shard profiler (`b`)
            // measures work that happens while the global root span is
            // live, then gets drained into the global tree.
            let _root = a.span(&[]);
            {
                let _x = b.span(&["engine", "dispatch"]);
                // Spin long enough that the span's elapsed time is
                // nonzero even on a coarse monotonic clock.
                let mut acc = 0u64;
                for i in 0..50_000u64 {
                    acc = acc.wrapping_add(std::hint::black_box(i));
                }
                std::hint::black_box(acc);
            }
            b.note_sim_us(777);
            a.absorb(&b);
        }
        assert!(a.structure().contains("engine/dispatch 1"));
        assert!(a.structure().contains("sim_us 777"));
        // Source drained: absorbing again adds nothing.
        {
            let _root = a.span(&[]);
            a.absorb(&b);
        }
        assert!(a.structure().contains("engine/dispatch 1"));
        // The absorbed time was credited to the live root: everything
        // under the root is attributed, so `other` is only the root's
        // own bookkeeping.
        assert!(a.attributed_fraction() > 0.0);
        let rows = a.rows();
        let total: u64 = a.total_ns();
        let self_sum: u64 = rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(self_sum, total);
    }

    #[test]
    fn absorb_self_is_a_no_op() {
        let p = Profiler::enabled();
        {
            let _a = p.span(&["engine", "dispatch"]);
        }
        p.absorb(&p.clone());
        assert!(p.structure().contains("engine/dispatch 1"));
    }

    #[test]
    fn flamegraph_lines_parse_as_stack_and_count() {
        let p = Profiler::enabled();
        {
            let _root = p.span(&[]);
            let _a = p.span(&["engine", "transmit"]);
        }
        for line in p.flamegraph().lines() {
            let (stack, n) = line.rsplit_once(' ').expect("collapsed line");
            assert!(stack.starts_with(ROOT));
            let _: u64 = n.parse().expect("self ns");
        }
        assert!(p.flamegraph().contains("run;engine;transmit "));
    }

    #[test]
    fn json_summary_is_self_describing() {
        let p = Profiler::enabled();
        {
            let _root = p.span(&[]);
            let _a = p.span(&["obs", "record"]);
        }
        let j = p.json_summary();
        assert!(j.starts_with("{\"kind\":\"ps-prof\",\"v\":1,"));
        assert!(j.contains("\"path\":\"obs/record\""));
        assert!(j.contains("\"attributed_pct\":"));
    }
}
