//! Real transport: unmodified protocol stacks over UDP loopback.
//!
//! The simulator answers "does the switching logic behave?"; this crate
//! answers "does the *same code* behave on a real medium?". It takes the
//! exact [`GroupSpec`](ps_stack::GroupSpec) a simulated run is built
//! from — same stack factory, same seeded workload — and runs each
//! process on its own OS thread with its own `UdpSocket`, loopback
//! datagrams standing in for the simulated medium. No [`Layer`] code
//! changes; only the [`Driver`](ps_stack::Driver) behind the stacks does.
//!
//! Two things make the runs comparable rather than merely analogous:
//!
//! * **Identical observability.** Node threads record into the same
//!   `ps-obs` [`Recorder`](ps_obs::Recorder) schema as the engine —
//!   `AppSend`/`AppDeliver`/`FrameSend`/`FrameDeliver`/`TimerFire`, with
//!   wall-clock microseconds in place of simulated ones — so monitors
//!   and the [`MetricsSampler`](ps_obs::MetricsSampler) evaluate real
//!   runs with zero changes.
//! * **A real wire format.** Frames leave the process through
//!   [`dgram`]'s `ps-wire` header (magic, version, source id,
//!   length-prefixed payload), so serialization is exercised for real:
//!   a malformed datagram is counted and dropped, never trusted.
//!
//! What is *not* promised: byte-identity with the simulator. Wall-clock
//! jitter reorders same-instant events, the OS may drop datagrams under
//! load, and cross-process causal edges are not ferried over the wire.
//! `docs/transport.md` catalogs the divergences and the tolerances the
//! `repro real --compare` diff applies on top of them.
//!
//! [`Layer`]: ps_stack::Layer
//!
//! # Example
//!
//! ```
//! use ps_net::{NetConfig, UdpGroup};
//! use ps_simnet::SimTime;
//! use ps_stack::{Driver, GroupSpec, Stack};
//! use ps_trace::ProcessId;
//!
//! let spec = GroupSpec::new(2)
//!     .seed(7)
//!     .stack_factory(|_, _, _| Stack::new(vec![]))
//!     .send_at(SimTime::from_millis(2), ProcessId(0), b"hello".as_ref());
//! let mut group = UdpGroup::launch(spec, NetConfig::default());
//! group.run_until(SimTime::from_millis(80));
//! let trace = group.app_trace();
//! group.shutdown();
//! assert_eq!(trace.sent_ids().len(), 1);
//! ```

#![deny(missing_docs)]

pub mod dgram;
mod runtime;

pub use runtime::{NetConfig, NetReport, UdpGroup};
