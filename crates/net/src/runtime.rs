//! The UDP-loopback group runtime: one OS thread + one socket per process.
//!
//! Structure mirrors `ps_rt`'s in-memory runtime — staged environment
//! effects, a due-heap for timers and scheduled workload, wall-clock time
//! mapped onto [`SimTime`] microseconds from a shared epoch — but frames
//! leave the process as real datagrams (`dgram` module) and arrive
//! through `recv_from`, and the run records into `ps-obs` exactly like a
//! simulated run: `AppSend`/`AppDeliver`/`FrameSend`/`FrameDeliver`/
//! `TimerFire` events with wall-clock `at_us`, monitors and the
//! `MetricsSampler` fed identically.

use crate::dgram;
use ps_bytes::Bytes;
use ps_simnet::{DetRng, SimTime};
use ps_stack::{Cast, Driver, Frame, GroupSpec, LayerId, Stack, StackEnv};
use ps_trace::{Event, Message, MsgId, ProcessId, Trace};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Transport parameters for a [`UdpGroup`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address the per-process sockets bind on (port 0 = OS-assigned).
    /// Loopback by default; the driver never leaves the host.
    pub bind_addr: &'static str,
    /// Upper bound on one receive wait — the granularity at which idle
    /// node threads re-check timers and the stop flag.
    pub max_wait: Duration,
    /// Largest acceptable datagram; oversized frames panic the sender
    /// thread rather than silently truncating on the wire.
    pub max_datagram: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self { bind_addr: "127.0.0.1:0", max_wait: Duration::from_millis(5), max_datagram: 60_000 }
    }
}

/// Everything a finished run produced (beyond the [`Driver`] accessors).
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Application messages delivered per process.
    pub delivered_per_process: Vec<usize>,
    /// Datagrams received that failed [`dgram::decode`], per process.
    pub malformed_per_process: Vec<usize>,
}

/// Shared counters the sampler thread drains each window.
#[derive(Default)]
struct NetCounters {
    frames_sent: AtomicU64,
    copies_delivered: AtomicU64,
}

type SharedLog = Arc<Mutex<Vec<(SimTime, u16, Event)>>>;

/// What a due-heap entry fires.
#[derive(PartialEq, Eq)]
enum Pending {
    /// A layer timer: `(layer, token)`.
    Timer(LayerId, u32),
    /// The node's scheduled application send at this index.
    App(usize),
}

/// Heap entry ordered by due instant, FIFO on ties.
#[derive(PartialEq, Eq)]
struct Due(Reverse<Instant>, u64, Pending);

impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0).then(Reverse(self.1).cmp(&Reverse(other.1)))
    }
}

/// The stack's environment inside a node thread. Emissions are staged and
/// applied after each stack call, mirroring both other runtimes.
struct NetEnv<'a> {
    me: ProcessId,
    group: &'a [ProcessId],
    epoch: Instant,
    rng: &'a mut DetRng,
    outbox: Vec<(Frame, ps_obs::CauseId)>,
    new_timers: Vec<(Duration, LayerId, u32)>,
    log: &'a SharedLog,
    delivered: &'a mut usize,
    rec: &'a ps_obs::Recorder,
    rec_on: bool,
    cause: ps_obs::CauseId,
}

impl NetEnv<'_> {
    fn at_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl StackEnv for NetEnv<'_> {
    fn me(&self) -> ProcessId {
        self.me
    }
    fn group(&self) -> &[ProcessId] {
        self.group
    }
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.at_us())
    }
    fn rng(&mut self) -> &mut DetRng {
        self.rng
    }
    fn transmit(&mut self, frame: Frame) {
        // Record the send intent here (where the causal context lives);
        // the socket write happens when effects are applied.
        if self.rec_on {
            let copies = match frame.dest {
                Cast::All => self.group.len(),
                Cast::Others => self.group.len() - 1,
                Cast::To(_) => 1,
            };
            self.rec.record_caused(
                self.at_us(),
                u32::from(self.me.0),
                self.cause,
                ps_obs::ObsEvent::FrameSend {
                    bytes: frame.bytes.len() as u32,
                    copies: copies as u32,
                },
            );
        }
        let cause = self.cause;
        self.outbox.push((frame, cause));
    }
    fn deliver(&mut self, _src: ProcessId, msg: Message) {
        *self.delivered += 1;
        let at = self.now();
        if self.rec_on && msg.id.seq < (1 << 48) {
            // Same filter as the simulated runtime: control envelopes
            // (reserved seq space) are not application traffic.
            self.rec.record_caused(
                at.as_micros(),
                u32::from(self.me.0),
                self.cause,
                ps_obs::ObsEvent::AppDeliver {
                    sender: u32::from(msg.id.sender.0),
                    seq: msg.id.seq,
                },
            );
        }
        self.log.lock().expect("net log poisoned").push((
            at,
            self.me.0,
            Event::deliver(self.me, msg),
        ));
    }
    fn set_timer(&mut self, delay: SimTime, id: LayerId, token: u32) {
        self.new_timers.push((Duration::from_micros(delay.as_micros()), id, token));
    }
    fn obs(&self) -> Option<&ps_obs::Recorder> {
        self.rec_on.then_some(self.rec)
    }
    fn cause(&self) -> ps_obs::CauseId {
        self.cause
    }
    fn set_cause(&mut self, cause: ps_obs::CauseId) -> ps_obs::CauseId {
        std::mem::replace(&mut self.cause, cause)
    }
}

struct NodeThread {
    me: ProcessId,
    group: Vec<ProcessId>,
    stack: Stack,
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    epoch: Instant,
    rng: DetRng,
    cfg: NetConfig,
    next_seq: u64,
    scheduled: Vec<Bytes>,
    log: SharedLog,
    rec: ps_obs::Recorder,
    rec_on: bool,
    counters: Arc<NetCounters>,
    stop: Arc<AtomicBool>,
    delivered: usize,
    malformed: usize,
    heap: BinaryHeap<Due>,
    heap_seq: u64,
}

impl NodeThread {
    fn push_due(&mut self, at: Instant, item: Pending) {
        self.heap_seq += 1;
        self.heap.push(Due(Reverse(at), self.heap_seq, item));
    }

    /// Applies staged effects: arm timers, put frames on the wire.
    fn apply(
        &mut self,
        outbox: Vec<(Frame, ps_obs::CauseId)>,
        timers: Vec<(Duration, LayerId, u32)>,
    ) {
        let now = Instant::now();
        for (delay, id, token) in timers {
            self.push_due(now + delay, Pending::Timer(id, token));
        }
        for (frame, _cause) in outbox {
            let wire = dgram::encode(self.me, &frame.bytes);
            assert!(
                wire.len() <= self.cfg.max_datagram,
                "frame of {} bytes exceeds max_datagram {}",
                wire.len(),
                self.cfg.max_datagram
            );
            let dests: Vec<ProcessId> = match frame.dest {
                Cast::All => self.group.clone(),
                Cast::Others => self.group.iter().copied().filter(|&p| p != self.me).collect(),
                Cast::To(p) => vec![p],
            };
            self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
            for d in dests {
                // A peer that already shut its socket is fine to ignore —
                // same stance as the in-memory runtime on disappeared peers.
                let _ = self.socket.send_to(&wire, self.peers[d.index()]);
            }
        }
    }

    fn with_env<R>(
        &mut self,
        cause: ps_obs::CauseId,
        f: impl FnOnce(&mut Stack, &mut NetEnv<'_>) -> R,
    ) -> R {
        let group = self.group.clone();
        let log = self.log.clone();
        let rec = self.rec.clone();
        let (r, outbox, timers) = {
            let mut env = NetEnv {
                me: self.me,
                group: &group,
                epoch: self.epoch,
                rng: &mut self.rng,
                outbox: Vec::new(),
                new_timers: Vec::new(),
                log: &log,
                delivered: &mut self.delivered,
                rec: &rec,
                rec_on: self.rec_on,
                cause,
            };
            let r = f(&mut self.stack, &mut env);
            let outbox = std::mem::take(&mut env.outbox);
            let timers = std::mem::take(&mut env.new_timers);
            (r, outbox, timers)
        };
        self.apply(outbox, timers);
        r
    }

    fn at_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn fire_due(&mut self) {
        loop {
            let due = self.heap.peek().is_some_and(|d| d.0 .0 <= Instant::now());
            if !due {
                break;
            }
            let Due(_, _, pending) = self.heap.pop().expect("peeked");
            match pending {
                Pending::App(idx) => {
                    let body = self.scheduled[idx].clone();
                    let msg = Message::new(self.me, self.next_seq, body);
                    self.next_seq += 1;
                    let mut cause = ps_obs::CauseId::NONE;
                    if self.rec_on {
                        // The send is a causal root here: the simulator
                        // parents it on the engine's timer event, but a
                        // real schedule has no recorded trigger.
                        cause = self.rec.record(
                            self.at_us(),
                            u32::from(self.me.0),
                            ps_obs::ObsEvent::AppSend {
                                sender: u32::from(msg.id.sender.0),
                                seq: msg.id.seq,
                            },
                        );
                    }
                    self.log.lock().expect("net log poisoned").push((
                        SimTime::from_micros(self.at_us()),
                        self.me.0,
                        Event::send(msg.clone()),
                    ));
                    self.with_env(cause, |stack, env| stack.send(&msg, env));
                }
                Pending::Timer(id, token) => {
                    let mut cause = ps_obs::CauseId::NONE;
                    if self.rec_on {
                        cause = self.rec.record(
                            self.at_us(),
                            u32::from(self.me.0),
                            ps_obs::ObsEvent::TimerFire {
                                token: (u64::from(id.0) << 32) | u64::from(token),
                            },
                        );
                    }
                    self.with_env(cause, |stack, env| {
                        stack.timer(id, token, env);
                    });
                }
            }
        }
    }

    fn run(mut self) -> (usize, usize) {
        // First scheduled sends were pushed before spawn; launch the stack.
        self.with_env(ps_obs::CauseId::NONE, |stack, env| stack.launch(env));
        let mut buf = vec![0u8; 65_535];
        while !self.stop.load(Ordering::Relaxed) {
            self.fire_due();
            let wait = self
                .heap
                .peek()
                .map(|d| d.0 .0.saturating_duration_since(Instant::now()))
                .unwrap_or(self.cfg.max_wait)
                .clamp(Duration::from_micros(200), self.cfg.max_wait);
            self.socket.set_read_timeout(Some(wait)).expect("set_read_timeout");
            match self.socket.recv_from(&mut buf) {
                Ok((n, _addr)) => match dgram::decode(&buf[..n]) {
                    Ok((src, payload)) => {
                        self.counters.copies_delivered.fetch_add(1, Ordering::Relaxed);
                        let mut cause = ps_obs::CauseId::NONE;
                        if self.rec_on {
                            // Causal root: the sender's FrameSend lives on
                            // another host's timeline and its CauseId is
                            // not ferried across the wire (a documented
                            // sim-vs-real divergence; docs/transport.md).
                            cause = self.rec.record(
                                self.at_us(),
                                u32::from(self.me.0),
                                ps_obs::ObsEvent::FrameDeliver {
                                    src: u32::from(src.0),
                                    bytes: payload.len() as u32,
                                },
                            );
                        }
                        self.with_env(cause, |stack, env| stack.receive(src, payload, env));
                    }
                    Err(_) => self.malformed += 1,
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("recv_from failed on {}: {e}", self.me),
            }
        }
        (self.delivered, self.malformed)
    }
}

/// A group of processes over UDP loopback, one OS thread and one socket
/// each, running unmodified protocol stacks from a [`GroupSpec`].
///
/// The real-transport half of the [`Driver`] split; see the
/// [crate docs](crate) and `docs/transport.md` for the contract and the
/// known divergences from the simulated driver.
pub struct UdpGroup {
    group: Vec<ProcessId>,
    epoch: Instant,
    log: SharedLog,
    rec: ps_obs::Recorder,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<(usize, usize)>>,
    sampler_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for UdpGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpGroup")
            .field("processes", &self.group.len())
            .field("now", &Driver::now(self))
            .finish()
    }
}

impl UdpGroup {
    /// Binds one loopback socket per process, builds every stack with the
    /// spec's factory (on the caller's thread — factories may capture
    /// non-`Send` state), and spawns the node threads. Scheduled sends
    /// fire at their offsets from this call's instant.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no stack factory, a scheduled sender is out
    /// of range, or a socket cannot bind.
    pub fn launch(spec: GroupSpec, cfg: NetConfig) -> Self {
        let factory = spec.factory.as_ref().expect("GroupSpec requires a stack_factory");
        let group = spec.group();
        let n = group.len();

        // Sort workload per process; heap ties break FIFO, so same-offset
        // sends fire in schedule order exactly like the simulated driver.
        let mut per_node: Vec<Vec<(SimTime, Bytes)>> = vec![Vec::new(); n];
        for (at, p, body) in &spec.sends {
            assert!(p.index() < n, "scheduled sender {p} out of range");
            per_node[p.index()].push((*at, body.clone()));
        }
        for sends in &mut per_node {
            sends.sort_by_key(|(at, _)| *at);
        }

        let sockets: Vec<UdpSocket> =
            (0..n).map(|_| UdpSocket::bind(cfg.bind_addr).expect("bind loopback socket")).collect();
        let peers: Vec<SocketAddr> =
            sockets.iter().map(|s| s.local_addr().expect("local_addr")).collect();

        let rec = spec.recorder.clone().unwrap_or_default();
        let rec_on = rec.is_enabled();
        let log: SharedLog = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        let epoch = Instant::now();

        let mut threads = Vec::new();
        for (i, socket) in sockets.into_iter().enumerate() {
            let me = ProcessId(i as u16);
            let mut ids = ps_stack::IdGen::new();
            let stack = factory(me, &group, &mut ids);
            let mut node = NodeThread {
                me,
                group: group.clone(),
                stack,
                socket,
                peers: peers.clone(),
                epoch,
                rng: DetRng::new(spec.seed ^ ((i as u64) << 16)),
                cfg: cfg.clone(),
                next_seq: 1,
                scheduled: per_node[i].iter().map(|(_, b)| b.clone()).collect(),
                log: Arc::clone(&log),
                rec: rec.clone(),
                rec_on,
                counters: Arc::clone(&counters),
                stop: Arc::clone(&stop),
                delivered: 0,
                malformed: 0,
                heap: BinaryHeap::new(),
                heap_seq: 0,
            };
            for (idx, (at, _)) in per_node[i].iter().enumerate() {
                node.push_due(epoch + Duration::from_micros(at.as_micros()), Pending::App(idx));
            }
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ps-net-p{i}"))
                    .spawn(move || node.run())
                    .expect("spawn node thread"),
            );
        }

        let sampler_thread = spec.sampler.clone().map(|sampler| {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let interval = Duration::from_micros(sampler.interval_us());
            std::thread::Builder::new()
                .name("ps-net-sampler".into())
                .spawn(move || {
                    let mut window_end = epoch + interval;
                    while !stop.load(Ordering::Relaxed) {
                        let now = Instant::now();
                        if now < window_end {
                            std::thread::sleep((window_end - now).min(Duration::from_millis(5)));
                            continue;
                        }
                        // Utilization and queue-depth fields stay 0: the
                        // OS gives no per-window bus/CPU shares for a real
                        // socket run (documented divergence).
                        sampler.push(ps_obs::LoadSample {
                            at_us: (window_end - epoch).as_micros() as u64,
                            frames_sent: counters.frames_sent.swap(0, Ordering::Relaxed),
                            copies_delivered: counters.copies_delivered.swap(0, Ordering::Relaxed),
                            ..Default::default()
                        });
                        window_end += interval;
                    }
                })
                .expect("spawn sampler thread")
        });

        Self { group, epoch, log, rec, stop, threads, sampler_thread }
    }

    /// Stops every node thread (and the sampler), joins them, and returns
    /// the per-process tallies. Call after [`Driver::run_until`] — the
    /// results surface any node-thread panic.
    pub fn shutdown(mut self) -> NetReport {
        self.stop.store(true, Ordering::Relaxed);
        let mut delivered_per_process = Vec::new();
        let mut malformed_per_process = Vec::new();
        for t in self.threads.drain(..) {
            let (delivered, malformed) = t.join().expect("node thread panicked");
            delivered_per_process.push(delivered);
            malformed_per_process.push(malformed);
        }
        if let Some(t) = self.sampler_thread.take() {
            t.join().expect("sampler thread panicked");
        }
        NetReport { delivered_per_process, malformed_per_process }
    }
}

impl Drop for UdpGroup {
    fn drop(&mut self) {
        // Never leak node threads if the caller skipped `shutdown`.
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.sampler_thread.take() {
            let _ = t.join();
        }
    }
}

impl Driver for UdpGroup {
    /// Sleeps until wall-clock `deadline` (offset from launch) has
    /// passed. Node threads keep processing in the background; a deadline
    /// already in the past returns immediately.
    fn run_until(&mut self, deadline: SimTime) {
        let target = self.epoch + Duration::from_micros(deadline.as_micros());
        loop {
            let now = Instant::now();
            if now >= target {
                break;
            }
            std::thread::sleep((target - now).min(Duration::from_millis(20)));
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn group(&self) -> &[ProcessId] {
        &self.group
    }

    fn app_trace(&self) -> Trace {
        let mut evs = self.log.lock().expect("net log poisoned").clone();
        // Stable sort: same-microsecond events at one node keep their
        // thread-local order, mirroring the simulated driver's (at, node,
        // log-index) key.
        evs.sort_by_key(|&(at, node, _)| (at, node));
        evs.into_iter().map(|(_, _, e)| e).collect()
    }

    fn send_times(&self) -> BTreeMap<MsgId, SimTime> {
        let mut out = BTreeMap::new();
        for (at, _, ev) in self.log.lock().expect("net log poisoned").iter() {
            if let Event::Send(m) = ev {
                out.insert(m.id, *at);
            }
        }
        out
    }

    fn deliveries(&self) -> Vec<ps_stack::DeliveryRecord> {
        let mut out = Vec::new();
        for (at, _, ev) in self.log.lock().expect("net log poisoned").iter() {
            if let Event::Deliver(p, m) = ev {
                out.push(ps_stack::DeliveryRecord { msg: m.id, process: *p, at: *at });
            }
        }
        out
    }

    fn recorder(&self) -> &ps_obs::Recorder {
        &self.rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: u16) -> GroupSpec {
        GroupSpec::new(n).seed(9).stack_factory(|_, _, _| Stack::new(vec![]))
    }

    #[test]
    fn empty_stack_group_delivers_everywhere() {
        let s = spec(3).send_at(SimTime::from_millis(5), ProcessId(0), b"a").send_at(
            SimTime::from_millis(10),
            ProcessId(1),
            b"b",
        );
        let mut g = UdpGroup::launch(s, NetConfig::default());
        g.run_until(SimTime::from_millis(150));
        let tr = g.app_trace();
        assert_eq!(tr.sent_ids().len(), 2);
        let report = g.shutdown();
        assert_eq!(report.delivered_per_process.iter().sum::<usize>(), 6);
        assert_eq!(report.malformed_per_process.iter().sum::<usize>(), 0);
    }

    #[test]
    fn recorder_and_sampler_are_fed() {
        let rec = ps_obs::Recorder::with_capacity(4096);
        let sampler = ps_obs::MetricsSampler::new(20_000);
        let s = spec(2).recorder(rec.clone()).sampler(sampler.clone()).send_at(
            SimTime::from_millis(5),
            ProcessId(0),
            b"x",
        );
        let mut g = UdpGroup::launch(s, NetConfig::default());
        g.run_until(SimTime::from_millis(120));
        g.shutdown();
        if !rec.is_enabled() {
            return; // tap feature off: nothing recorded by design.
        }
        let events = rec.snapshot();
        let sends =
            events.iter().filter(|e| matches!(e.ev, ps_obs::ObsEvent::AppSend { .. })).count();
        let delivers =
            events.iter().filter(|e| matches!(e.ev, ps_obs::ObsEvent::AppDeliver { .. })).count();
        assert_eq!(sends, 1);
        assert_eq!(delivers, 2, "both processes deliver (incl. self)");
        assert!(events.iter().any(|e| matches!(e.ev, ps_obs::ObsEvent::FrameSend { .. })));
        assert!(events.iter().any(|e| matches!(e.ev, ps_obs::ObsEvent::FrameDeliver { .. })));
        assert!(!sampler.is_empty(), "sampler saw at least one window");
        let total_frames: u64 = sampler.samples().iter().map(|s| s.frames_sent).sum();
        assert!(total_frames >= 1);
    }

    #[test]
    fn mean_latency_is_positive_and_sane() {
        let s = spec(2).send_at(SimTime::from_millis(2), ProcessId(0), b"x");
        let mut g = UdpGroup::launch(s, NetConfig::default());
        g.run_until(SimTime::from_millis(100));
        let lat = g.mean_delivery_latency().expect("something delivered");
        assert!(lat < SimTime::from_millis(60), "loopback latency {lat} way too high");
        g.shutdown();
    }

    #[test]
    #[should_panic(expected = "stack_factory")]
    fn launch_without_factory_panics() {
        let _ = UdpGroup::launch(GroupSpec::new(2), NetConfig::default());
    }
}
