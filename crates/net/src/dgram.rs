//! The on-the-wire datagram format.
//!
//! Inside the simulator a [`Frame`](ps_stack::Frame)'s bytes move as an
//! in-memory handle and the engine knows the sender; on a real socket the
//! bytes *are* the message, so the sender identity must ride along. Each
//! UDP datagram carries one frame wrapped in a minimal `ps-wire` header:
//!
//! ```text
//! +--------+---------+-------------+------------------------+
//! | magic  | version | src varint  | payload (len-prefixed) |
//! | 1 byte | 1 byte  | 1-3 bytes   | varint len + bytes     |
//! +--------+---------+-------------+------------------------+
//! ```
//!
//! The payload length is redundant with the datagram length — UDP
//! preserves message boundaries — but encoding it makes truncation
//! detectable ([`decode`] rejects short reads and trailing garbage) and
//! leaves room to batch multiple frames per datagram later without a
//! format break. Process ids are varints, so the whole header is 4 bytes
//! for groups under 128 processes — small groups pay five bytes of
//! overhead, not a fixed worst case.

use ps_bytes::Bytes;
use ps_trace::ProcessId;
use ps_wire::{Decoder, Encoder, WireError};

/// First byte of every ps-net datagram.
pub const MAGIC: u8 = 0xA7;

/// Wire-format version; bump on any incompatible change.
pub const VERSION: u8 = 1;

/// Wraps one frame payload from `src` into a datagram.
pub fn encode(src: ProcessId, payload: &Bytes) -> Bytes {
    let mut e = Encoder::with_capacity(payload.len() + 8);
    e.put_u8(MAGIC);
    e.put_u8(VERSION);
    e.put_varint(u64::from(src.0));
    e.put_bytes(payload);
    e.finish()
}

/// Unwraps a received datagram into `(src, payload)`.
///
/// Rejects bad magic, unknown versions, out-of-range process ids,
/// truncated payloads, and trailing bytes — a real network can hand the
/// socket anything, and a malformed datagram must not take the node down.
pub fn decode(datagram: &[u8]) -> Result<(ProcessId, Bytes), WireError> {
    let mut d = Decoder::new(datagram);
    let magic = d.get_u8()?;
    if magic != MAGIC {
        return Err(WireError::InvalidTag { tag: u64::from(magic), ty: "dgram magic" });
    }
    let version = d.get_u8()?;
    if version != VERSION {
        return Err(WireError::InvalidTag { tag: u64::from(version), ty: "dgram version" });
    }
    let src = d.get_varint()?;
    if src > u64::from(u16::MAX) {
        return Err(WireError::InvalidTag { tag: src, ty: "dgram src process id" });
    }
    let payload = Bytes::copy_from_slice(d.get_bytes()?);
    d.finish()?;
    Ok((ProcessId(src as u16), payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_src_and_payload() {
        let payload = Bytes::copy_from_slice(b"frame body");
        let wire = encode(ProcessId(7), &payload);
        let (src, got) = decode(&wire).unwrap();
        assert_eq!(src, ProcessId(7));
        assert_eq!(got.as_ref(), payload.as_ref());
    }

    #[test]
    fn small_group_header_is_five_bytes() {
        let wire = encode(ProcessId(3), &Bytes::copy_from_slice(b"x"));
        // magic + version + 1-byte src varint + 1-byte len varint + 1 payload byte.
        assert_eq!(wire.len(), 5);
    }

    #[test]
    fn large_process_ids_roundtrip() {
        let wire = encode(ProcessId(u16::MAX), &Bytes::copy_from_slice(b""));
        assert_eq!(decode(&wire).unwrap().0, ProcessId(u16::MAX));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut wire = encode(ProcessId(0), &Bytes::copy_from_slice(b"y")).to_vec();
        wire[0] ^= 0xFF;
        assert!(decode(&wire).is_err());
    }

    #[test]
    fn unknown_version_rejected() {
        let mut wire = encode(ProcessId(0), &Bytes::copy_from_slice(b"y")).to_vec();
        wire[1] = VERSION + 1;
        assert!(decode(&wire).is_err());
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        let wire = encode(ProcessId(1), &Bytes::copy_from_slice(b"hello")).to_vec();
        assert!(decode(&wire[..wire.len() - 1]).is_err(), "truncated payload");
        let mut extra = wire.clone();
        extra.push(0);
        assert!(decode(&extra).is_err(), "trailing garbage");
        assert!(decode(&[]).is_err(), "empty datagram");
    }
}
