//! End-to-end over real sockets: the paper's hybrid total-order stack —
//! sequencer protocol, one scripted switch, token protocol — running
//! unmodified on UDP loopback, with the standard monitor set watching.
//!
//! This is the tentpole claim in executable form: no `Layer` knows which
//! medium it is on. The same `hybrid_total_order` constructor the
//! simulator runs is handed to `UdpGroup` via a `GroupSpec`, and total
//! order must hold across the switch on a real wire.

use ps_core::{hybrid_total_order, ManualOracle, NeverOracle, Oracle, SwitchConfig, SwitchHandle};
use ps_net::{NetConfig, UdpGroup};
use ps_obs::{MonitorSet, Recorder};
use ps_simnet::SimTime;
use ps_stack::{Driver, GroupSpec};
use ps_trace::props::{Property, Reliability, TotalOrder};
use ps_trace::ProcessId;
use std::sync::{Arc, Mutex};

#[test]
fn hybrid_switch_over_loopback_keeps_total_order_and_monitors_clean() {
    let n: u16 = 2;
    let rec = Recorder::with_capacity(16 * 1024);
    // Generous liveness bound: wall-clock switch latency includes OS
    // scheduling, not just protocol rounds.
    let monitors = MonitorSet::standard(u32::from(n), 2_000_000);
    monitors.attach(&rec);

    let handles: Arc<Mutex<Vec<SwitchHandle>>> = Arc::new(Mutex::new(Vec::new()));
    let handles_in = Arc::clone(&handles);

    let mut spec =
        GroupSpec::new(n).seed(0xBEEF).recorder(rec.clone()).stack_factory(move |p, _, ids| {
            let oracle: Box<dyn Oracle> = if p == ProcessId(0) {
                // Script the switch at 60 ms — mid-workload, so messages
                // straddle the sequencer→token handover.
                Box::new(ManualOracle::new(vec![(SimTime::from_millis(60), 1)]))
            } else {
                Box::new(NeverOracle)
            };
            let (stack, handle) =
                hybrid_total_order(ids, SwitchConfig::default(), ProcessId(0), oracle);
            handles_in.lock().unwrap().push(handle);
            stack
        });
    for i in 0..12u64 {
        spec = spec.send_at(
            SimTime::from_millis(5 + 8 * i),
            ProcessId((i % u64::from(n)) as u16),
            format!("e2e-{i}"),
        );
    }

    let mut group = UdpGroup::launch(spec, NetConfig::default());
    // Workload ends ~93 ms in; leave ample drain time for token rounds.
    group.run_until(SimTime::from_millis(700));
    let trace = group.app_trace();
    let report = group.shutdown();

    assert_eq!(report.malformed_per_process.iter().sum::<usize>(), 0, "every datagram must decode");

    let members = [ProcessId(0), ProcessId(1)];
    assert_eq!(trace.sent_ids().len(), 12);
    assert!(
        Reliability::new(members).holds(&trace),
        "all 12 messages delivered everywhere:\n{trace}"
    );
    assert!(
        TotalOrder.holds(&trace),
        "total order must survive the switch on a real medium:\n{trace}"
    );

    // The switch actually happened on every process (not a trivial pass
    // where the oracle never fired).
    for handle in handles.lock().unwrap().iter() {
        let stats = handle.snapshot();
        assert_eq!(stats.current, 1, "process still on the sequencer protocol");
        assert!(!stats.switching, "switch left dangling");
        assert_eq!(stats.aborted, 0, "switch aborted on loopback");
    }

    if rec.is_enabled() {
        let violations = monitors.finish();
        assert!(violations.is_empty(), "monitor violations on loopback: {violations:?}");
        assert!(
            rec.snapshot().iter().any(|e| matches!(e.ev, ps_obs::ObsEvent::SwitchPhase { .. })),
            "switch phases should be observable over the real transport"
        );
    }
}
