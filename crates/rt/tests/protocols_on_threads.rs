//! The same protocol stacks — including the switching protocol — running
//! on real OS threads with wall-clock timers. Assertions are on trace
//! properties, never exact timings.

use ps_core::{hybrid_total_order, ManualOracle, NeverOracle, Oracle, SwitchConfig, SwitchHandle};
use ps_protocols::{ReliableConfig, ReliableLayer, SeqOrderLayer, TokenOrderLayer};
use ps_rt::{RtConfig, RtGroup};
use ps_simnet::SimTime;
use ps_stack::Stack;
use ps_trace::props::{NoReplay, Property, Reliability, TotalOrder};
use ps_trace::ProcessId;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn drive(group: &RtGroup, n: u16, msgs: u32, gap: Duration) {
    for i in 0..msgs {
        group.send(ProcessId((i % u32::from(n)) as u16), format!("rt-{i}"));
        std::thread::sleep(gap);
    }
}

#[test]
fn sequencer_total_order_on_threads() {
    let n = 4;
    let group = RtGroup::spawn(n, RtConfig::default(), |_, _, ids| {
        Stack::with_ids(vec![Box::new(SeqOrderLayer::new(ProcessId(0)))], ids)
    });
    drive(&group, n, 16, Duration::from_millis(3));
    std::thread::sleep(Duration::from_millis(300));
    let report = group.shutdown();
    assert!(TotalOrder.holds(&report.trace), "{}", report.trace);
    let members: Vec<ProcessId> = (0..n).map(ProcessId).collect();
    assert!(Reliability::new(members).holds(&report.trace));
    assert_eq!(report.delivered_per_process.iter().sum::<usize>(), 16 * 4);
}

#[test]
fn token_total_order_on_threads() {
    let n = 3;
    let group = RtGroup::spawn(n, RtConfig::default(), |_, _, ids| {
        Stack::with_ids(
            vec![Box::new(TokenOrderLayer::with_idle_hold(SimTime::from_millis(1)))],
            ids,
        )
    });
    drive(&group, n, 12, Duration::from_millis(4));
    std::thread::sleep(Duration::from_millis(400));
    let report = group.shutdown();
    assert!(TotalOrder.holds(&report.trace), "{}", report.trace);
    assert!(Reliability::new((0..n).map(ProcessId).collect::<Vec<_>>()).holds(&report.trace));
}

#[test]
fn reliable_exactly_once_under_loss_on_threads() {
    let n = 3;
    let cfg = RtConfig { loss: 0.25, ..RtConfig::default() };
    let group = RtGroup::spawn(n, cfg, |_, _, ids| {
        Stack::with_ids(
            vec![Box::new(ReliableLayer::with_config(ReliableConfig {
                retransmit_interval: SimTime::from_millis(5),
            }))],
            ids,
        )
    });
    drive(&group, n, 10, Duration::from_millis(3));
    // Give retransmissions room to finish.
    std::thread::sleep(Duration::from_millis(700));
    let report = group.shutdown();
    let members: Vec<ProcessId> = (0..n).map(ProcessId).collect();
    assert!(Reliability::new(members).holds(&report.trace), "{}", report.trace);
    assert!(NoReplay.holds(&report.trace));
}

#[test]
fn protocol_switch_on_threads_preserves_total_order() {
    let n = 4;
    let handles: Arc<Mutex<Vec<SwitchHandle>>> = Arc::new(Mutex::new(Vec::new()));
    let h2 = handles.clone();
    let group = RtGroup::spawn(n, RtConfig::default(), move |p, _, ids| {
        let oracle: Box<dyn Oracle> = if p == ProcessId(0) {
            Box::new(ManualOracle::new(vec![(SimTime::from_millis(120), 1)]))
        } else {
            Box::new(NeverOracle)
        };
        let cfg =
            SwitchConfig { observe_interval: SimTime::from_millis(20), ..SwitchConfig::default() };
        let (stack, handle) = hybrid_total_order(ids, cfg, ProcessId(0), oracle);
        h2.lock().expect("handles").push(handle);
        stack
    });
    // Send across the switch instant.
    drive(&group, n, 30, Duration::from_millis(10));
    std::thread::sleep(Duration::from_millis(500));
    let report = group.shutdown();

    assert!(TotalOrder.holds(&report.trace), "{}", report.trace);
    let members: Vec<ProcessId> = (0..n).map(ProcessId).collect();
    assert!(Reliability::new(members).holds(&report.trace));
    let handles = handles.lock().expect("handles");
    assert!(
        handles.iter().all(|h| h.switches_completed() == 1 && h.current() == 1),
        "every thread must have switched to the token protocol: {handles:?}"
    );
}
