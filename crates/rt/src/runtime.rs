use ps_bytes::Bytes;
use ps_simnet::{DetRng, SimTime};
use ps_stack::{Cast, Frame, IdGen, LayerId, Stack, StackEnv};
use ps_trace::{Event, Message, ProcessId, Trace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Link and runtime parameters.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Base one-way link latency applied to every transmitted copy.
    pub link_latency: Duration,
    /// Uniform extra delay in `[0, jitter)` per copy.
    pub link_jitter: Duration,
    /// Probability each copy is dropped in "transit".
    pub loss: f64,
    /// Seed for per-process deterministic randomness (loss/jitter draws).
    pub seed: u64,
}

impl Default for RtConfig {
    fn default() -> Self {
        Self {
            link_latency: Duration::from_micros(500),
            link_jitter: Duration::from_micros(200),
            loss: 0.0,
            seed: 0x27,
        }
    }
}

/// Everything a run produced.
#[derive(Debug, Clone)]
pub struct RtReport {
    /// The merged application-level trace, in wall-clock order — feed it
    /// straight to the `ps-trace` property checkers.
    pub trace: Trace,
    /// Application messages delivered per process.
    pub delivered_per_process: Vec<usize>,
}

enum Cmd {
    /// A transmitted copy; hold until `deliver_at`.
    Packet { src: ProcessId, bytes: Bytes, deliver_at: Instant },
    /// The application multicasts a message body.
    AppSend(Bytes),
    /// Drain and exit.
    Stop,
}

/// Heap entry ordering by due time.
#[derive(PartialEq, Eq)]
struct Due<T: Eq>(Reverse<Instant>, u64, T);

impl<T: Eq> PartialOrd for Due<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Eq> Ord for Due<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: Reverse(instant) puts the earliest due first; ties
        // break FIFO by insertion sequence.
        self.0.cmp(&other.0).then(Reverse(self.1).cmp(&Reverse(other.1)))
    }
}

type SharedLog = Arc<Mutex<Vec<(SimTime, u16, Event)>>>;

struct ProcessThread {
    me: ProcessId,
    group: Vec<ProcessId>,
    stack: Stack,
    peers: Vec<Sender<Cmd>>,
    epoch: Instant,
    rng: DetRng,
    cfg: RtConfig,
    next_seq: u64,
    log: SharedLog,
    delivered: usize,
    /// Timers armed by layers: (due, layer, token).
    timers: BinaryHeap<Due<(LayerId, u32)>>,
    /// Inbound copies still "in flight".
    inbound: BinaryHeap<Due<(ProcessId, Bytes)>>,
    heap_seq: u64,
}

/// The stack's environment inside a process thread. Emissions are staged
/// and applied after each stack call, mirroring the simulator runtime.
struct RtEnv<'a> {
    me: ProcessId,
    group: &'a [ProcessId],
    epoch: Instant,
    rng: &'a mut DetRng,
    outbox: Vec<Frame>,
    new_timers: Vec<(Duration, LayerId, u32)>,
    log: &'a SharedLog,
    delivered: &'a mut usize,
}

impl StackEnv for RtEnv<'_> {
    fn me(&self) -> ProcessId {
        self.me
    }
    fn group(&self) -> &[ProcessId] {
        self.group
    }
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
    fn rng(&mut self) -> &mut DetRng {
        self.rng
    }
    fn transmit(&mut self, frame: Frame) {
        self.outbox.push(frame);
    }
    fn deliver(&mut self, _src: ProcessId, msg: Message) {
        *self.delivered += 1;
        let at = self.now();
        self.log.lock().expect("rt log poisoned").push((
            at,
            self.me.0,
            Event::deliver(self.me, msg),
        ));
    }
    fn set_timer(&mut self, delay: SimTime, id: LayerId, token: u32) {
        self.new_timers.push((Duration::from_micros(delay.as_micros()), id, token));
    }
}

impl ProcessThread {
    fn push_heap<T: Eq>(heap: &mut BinaryHeap<Due<T>>, seq: &mut u64, at: Instant, item: T) {
        *seq += 1;
        heap.push(Due(Reverse(at), *seq, item));
    }

    /// Applies staged environment effects: transmit frames, arm timers.
    fn apply(&mut self, outbox: Vec<Frame>, new_timers: Vec<(Duration, LayerId, u32)>) {
        let now = Instant::now();
        for (delay, id, token) in new_timers {
            Self::push_heap(&mut self.timers, &mut self.heap_seq, now + delay, (id, token));
        }
        for frame in outbox {
            let dests: Vec<ProcessId> = match frame.dest {
                Cast::All => self.group.clone(),
                Cast::Others => self.group.iter().copied().filter(|&p| p != self.me).collect(),
                Cast::To(p) => vec![p],
            };
            for d in dests {
                if self.rng.chance(self.cfg.loss) {
                    continue;
                }
                let jitter_us = self.cfg.link_jitter.as_micros() as u64;
                let extra = if jitter_us == 0 { 0 } else { self.rng.below(jitter_us) };
                let deliver_at = now + self.cfg.link_latency + Duration::from_micros(extra);
                // A disappeared peer (already shut down) is fine to ignore.
                let _ = self.peers[d.index()].send(Cmd::Packet {
                    src: self.me,
                    bytes: frame.bytes.clone(),
                    deliver_at,
                });
            }
        }
    }

    fn with_env<R>(&mut self, f: impl FnOnce(&mut Stack, &mut RtEnv<'_>) -> R) -> R {
        let group = self.group.clone();
        let log = self.log.clone();
        let (r, outbox, timers) = {
            let mut env = RtEnv {
                me: self.me,
                group: &group,
                epoch: self.epoch,
                rng: &mut self.rng,
                outbox: Vec::new(),
                new_timers: Vec::new(),
                log: &log,
                delivered: &mut self.delivered,
            };
            let r = f(&mut self.stack, &mut env);
            let outbox = std::mem::take(&mut env.outbox);
            let timers = std::mem::take(&mut env.new_timers);
            (r, outbox, timers)
        };
        self.apply(outbox, timers);
        r
    }

    fn fire_due(&mut self) {
        let now = Instant::now();
        loop {
            let timer_due = self.timers.peek().is_some_and(|d| d.0 .0 <= now);
            let inbound_due = self.inbound.peek().is_some_and(|d| d.0 .0 <= now);
            if timer_due {
                let Due(_, _, (id, token)) = self.timers.pop().expect("peeked");
                self.with_env(|stack, env| {
                    stack.timer(id, token, env);
                });
            } else if inbound_due {
                let Due(_, _, (src, bytes)) = self.inbound.pop().expect("peeked");
                self.with_env(|stack, env| stack.receive(src, bytes, env));
            } else {
                break;
            }
        }
    }

    fn next_deadline(&self) -> Option<Instant> {
        let t = self.timers.peek().map(|d| d.0 .0);
        let i = self.inbound.peek().map(|d| d.0 .0);
        match (t, i) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, None) => x,
            (None, y) => y,
        }
    }

    fn run(mut self, rx: std::sync::mpsc::Receiver<Cmd>) -> usize {
        self.with_env(|stack, env| stack.launch(env));
        loop {
            self.fire_due();
            let wait = self
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50));
            match rx.recv_timeout(wait) {
                Ok(Cmd::Packet { src, bytes, deliver_at }) => {
                    Self::push_heap(
                        &mut self.inbound,
                        &mut self.heap_seq,
                        deliver_at,
                        (src, bytes),
                    );
                }
                Ok(Cmd::AppSend(body)) => {
                    self.next_seq += 1;
                    let msg = Message::new(self.me, self.next_seq, body);
                    let at = SimTime::from_micros(self.epoch.elapsed().as_micros() as u64);
                    self.log.lock().expect("rt log poisoned").push((
                        at,
                        self.me.0,
                        Event::send(msg.clone()),
                    ));
                    self.with_env(|stack, env| stack.send(&msg, env));
                }
                Ok(Cmd::Stop) => break,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.delivered
    }
}

/// A running group of processes, one OS thread each.
pub struct RtGroup {
    senders: Vec<Sender<Cmd>>,
    threads: Vec<JoinHandle<usize>>,
    log: SharedLog,
}

impl std::fmt::Debug for RtGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtGroup").field("processes", &self.senders.len()).finish()
    }
}

impl RtGroup {
    /// Spawns `n` process threads, each running the stack the factory
    /// builds for it (same contract as
    /// [`ps_stack::GroupSimBuilder::stack_factory`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn spawn<F>(n: u16, cfg: RtConfig, factory: F) -> Self
    where
        F: Fn(ProcessId, &[ProcessId], &mut IdGen) -> Stack,
    {
        assert!(n > 0, "a group needs at least one process");
        let group: Vec<ProcessId> = (0..n).map(ProcessId).collect();
        let log: SharedLog = Arc::new(Mutex::new(Vec::new()));
        let epoch = Instant::now();

        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }

        let mut threads = Vec::new();
        for (i, rx) in receivers.into_iter().enumerate() {
            let me = ProcessId(i as u16);
            let mut ids = IdGen::new();
            let stack = factory(me, &group, &mut ids);
            let pt = ProcessThread {
                me,
                group: group.clone(),
                stack,
                peers: senders.clone(),
                epoch,
                rng: DetRng::new(cfg.seed ^ (i as u64) << 16),
                cfg: cfg.clone(),
                next_seq: 0,
                log: log.clone(),
                delivered: 0,
                timers: BinaryHeap::new(),
                inbound: BinaryHeap::new(),
                heap_seq: 0,
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ps-rt-p{i}"))
                    .spawn(move || pt.run(rx))
                    .expect("spawn process thread"),
            );
        }
        Self { senders, threads, log }
    }

    /// Asks process `p` to multicast a message with the given body.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn send(&self, p: ProcessId, body: impl AsRef<[u8]>) {
        self.senders[p.index()]
            .send(Cmd::AppSend(Bytes::copy_from_slice(body.as_ref())))
            .expect("process thread alive");
    }

    /// The trace recorded so far (the run keeps going).
    pub fn trace_so_far(&self) -> Trace {
        let mut evs = self.log.lock().expect("rt log poisoned").clone();
        evs.sort_by_key(|&(at, node, _)| (at, node));
        evs.into_iter().map(|(_, _, e)| e).collect()
    }

    /// Stops every process and returns the merged report.
    pub fn shutdown(self) -> RtReport {
        for tx in &self.senders {
            let _ = tx.send(Cmd::Stop);
        }
        let delivered_per_process: Vec<usize> =
            self.threads.into_iter().map(|t| t.join().expect("process thread panicked")).collect();
        let mut evs = self.log.lock().expect("rt log poisoned").clone();
        evs.sort_by_key(|&(at, node, _)| (at, node));
        RtReport { trace: evs.into_iter().map(|(_, _, e)| e).collect(), delivered_per_process }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stack_group_delivers_everywhere() {
        let g = RtGroup::spawn(3, RtConfig::default(), |_, _, _| Stack::new(vec![]));
        g.send(ProcessId(0), b"a");
        g.send(ProcessId(1), b"b");
        std::thread::sleep(Duration::from_millis(150));
        let report = g.shutdown();
        assert_eq!(report.delivered_per_process.iter().sum::<usize>(), 6);
        assert_eq!(report.trace.sent_ids().len(), 2);
    }

    #[test]
    fn trace_so_far_grows_during_run() {
        let g = RtGroup::spawn(2, RtConfig::default(), |_, _, _| Stack::new(vec![]));
        assert!(g.trace_so_far().is_empty());
        g.send(ProcessId(0), b"x");
        std::thread::sleep(Duration::from_millis(100));
        assert!(!g.trace_so_far().is_empty());
        g.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let _ = RtGroup::spawn(0, RtConfig::default(), |_, _, _| Stack::new(vec![]));
    }
}
