//! Real-time runtime: the same [`ps_stack::Stack`]s that run in the
//! simulator, executed on OS threads over in-memory links with wall-clock
//! timers.
//!
//! The simulator (`ps-simnet` + `ps_stack::GroupSim`) is the scientific
//! instrument — deterministic, seeded, reproducible. This crate is the
//! deployment-shaped counterpart: one thread per process, an inbox per
//! process, configurable link latency/jitter/loss, and the identical
//! [`ps_stack::Layer`] code in between. Nothing in any protocol layer (or
//! in the switching protocol) knows which runtime it is on — the paper's
//! transparency claim, taken one step further.
//!
//! Wall-clock runs are inherently nondeterministic; tests built on this
//! runtime should assert *properties* of the recorded trace (total order,
//! reliability, switch completion), never exact timings.
//!
//! # Examples
//!
//! ```
//! use ps_rt::{RtConfig, RtGroup};
//! use ps_stack::Stack;
//! use ps_trace::props::{Property, Reliability};
//! use ps_trace::ProcessId;
//! use std::time::Duration;
//!
//! let group = RtGroup::spawn(3, RtConfig::default(), |_, _, _| Stack::new(vec![]));
//! group.send(ProcessId(0), b"hello");
//! std::thread::sleep(Duration::from_millis(100));
//! let report = group.shutdown();
//! assert!(Reliability::new([ProcessId(0), ProcessId(1), ProcessId(2)])
//!     .holds(&report.trace));
//! ```

mod runtime;

pub use runtime::{RtConfig, RtGroup, RtReport};
