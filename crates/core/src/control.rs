//! Wire format of the switching protocol's control traffic (§2).
//!
//! The broadcast variant uses three messages — PREPARE, OK(member, count),
//! SWITCH(vector) — while the token variant folds the same information into
//! a token that rotates a logical ring three times per switch, changing
//! mode NORMAL → PREPARE → SWITCH → FLUSH → NORMAL.

use ps_trace::ProcessId;
use ps_wire::{Decoder, Encoder, Wire, WireError};

/// A per-member send-count vector: how many messages each member sent over
/// the protocol being switched away from.
pub type CountVector = Vec<(ProcessId, u64)>;

/// Broadcast-variant control messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Control {
    /// Manager → all: start switching era `era`.
    Prepare {
        /// The switch era being initiated (completed switches + 1).
        era: u64,
    },
    /// Member → manager: my send count over the current protocol.
    Ok {
        /// Echoed era.
        era: u64,
        /// The replying member.
        member: ProcessId,
        /// Messages this member sent over the current protocol this era.
        count: u64,
    },
    /// Manager → all: everyone's counts; flip once you've delivered them.
    Switch {
        /// Echoed era.
        era: u64,
        /// Send counts for every member.
        vector: CountVector,
    },
}

impl Wire for Control {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Control::Prepare { era } => {
                enc.put_u8(0);
                enc.put_varint(*era);
            }
            Control::Ok { era, member, count } => {
                enc.put_u8(1);
                enc.put_varint(*era);
                member.encode(enc);
                enc.put_varint(*count);
            }
            Control::Switch { era, vector } => {
                enc.put_u8(2);
                enc.put_varint(*era);
                vector.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.get_u8()? {
            0 => Ok(Control::Prepare { era: dec.get_varint()? }),
            1 => Ok(Control::Ok {
                era: dec.get_varint()?,
                member: ProcessId::decode(dec)?,
                count: dec.get_varint()?,
            }),
            2 => Ok(Control::Switch { era: dec.get_varint()?, vector: Vec::decode(dec)? }),
            tag => Err(WireError::InvalidTag { tag: tag.into(), ty: "Control" }),
        }
    }
}

/// The mode a ring token is in — "the token itself has a mode based on the
/// phase of the protocol" (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenMode {
    /// Idle circulation; an initiator may seize it.
    Normal,
    /// First rotation: collect per-member send counts.
    Prepare,
    /// Second rotation: disseminate the count vector.
    Switch,
    /// Third rotation: forwarded only once the member has drained the old
    /// protocol.
    Flush,
}

/// The ring token of the token-variant switching protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingToken {
    /// Current phase.
    pub mode: TokenMode,
    /// Switch era the token is executing (stable while NORMAL).
    pub era: u64,
    /// The member that seized the token (meaningful outside NORMAL).
    pub initiator: ProcessId,
    /// Send counts accumulated during the PREPARE rotation and carried
    /// through SWITCH.
    pub counts: CountVector,
}

impl RingToken {
    /// A fresh idle token for `era`.
    pub fn normal(era: u64) -> Self {
        Self { mode: TokenMode::Normal, era, initiator: ProcessId(0), counts: Vec::new() }
    }
}

impl Wire for RingToken {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self.mode {
            TokenMode::Normal => 0,
            TokenMode::Prepare => 1,
            TokenMode::Switch => 2,
            TokenMode::Flush => 3,
        });
        enc.put_varint(self.era);
        self.initiator.encode(enc);
        self.counts.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let mode = match dec.get_u8()? {
            0 => TokenMode::Normal,
            1 => TokenMode::Prepare,
            2 => TokenMode::Switch,
            3 => TokenMode::Flush,
            tag => return Err(WireError::InvalidTag { tag: tag.into(), ty: "TokenMode" }),
        };
        Ok(RingToken {
            mode,
            era: dec.get_varint()?,
            initiator: ProcessId::decode(dec)?,
            counts: Vec::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_roundtrips() {
        let msgs = [
            Control::Prepare { era: 3 },
            Control::Ok { era: 3, member: ProcessId(2), count: 17 },
            Control::Switch { era: 3, vector: vec![(ProcessId(0), 4), (ProcessId(1), 0)] },
        ];
        for m in msgs {
            assert_eq!(Control::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn token_roundtrips_all_modes() {
        for mode in [TokenMode::Normal, TokenMode::Prepare, TokenMode::Switch, TokenMode::Flush] {
            let t = RingToken {
                mode,
                era: 9,
                initiator: ProcessId(4),
                counts: vec![(ProcessId(4), 2)],
            };
            assert_eq!(RingToken::from_bytes(&t.to_bytes()).unwrap(), t);
        }
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(Control::from_bytes(&[9]).is_err());
        assert!(RingToken::from_bytes(&[9, 0, 0, 0, 0]).is_err());
    }
}
