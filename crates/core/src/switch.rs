use crate::control::{Control, CountVector, RingToken, TokenMode};
use crate::oracle::{Oracle, SwitchObs};
use crate::stats::{SwitchHandle, SwitchRecord};
use ps_bytes::Bytes;
use ps_obs::{ObsEvent, SpPhase};
use ps_simnet::{DetRng, SimTime};
use ps_stack::{channel, ChannelId, Frame, Layer, LayerCtx, LayerId, Stack, StackEnv};
use ps_trace::{Message, ProcessId};
use ps_wire::Wire;
use std::collections::{BTreeMap, VecDeque};

/// Which switching protocol variant to run (§2 describes both).
#[derive(Debug, Clone, Copy)]
pub enum SwitchVariant {
    /// PREPARE / OK / SWITCH over broadcast control messages.
    Broadcast,
    /// A token rotating a logical ring three times per switch — the
    /// implementation the paper actually deploys, which "avoids congestion
    /// on the network … \[and\] complicating issues with multiple members
    /// trying to switch protocols concurrently". An idle NORMAL token is
    /// held `idle_hold` at each member before being passed on.
    TokenRing {
        /// Idle-token hold time (zero = circulate continuously).
        idle_hold: SimTime,
    },
}

/// Configuration of a [`SwitchLayer`].
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Protocol variant.
    pub variant: SwitchVariant,
    /// How often the oracle is consulted.
    pub observe_interval: SimTime,
    /// Sliding window over which "active senders" are counted.
    pub observe_window: SimTime,
    /// Announce each completed switch to the application as a virtually
    /// synchronous **view change** (a [`ps_trace::Message::view_change`]
    /// delivered at the flip, view number = switch era).
    ///
    /// This implements the paper's §8 future work: "virtually synchronous
    /// view changes can be used to switch protocols, and this more
    /// complicated mechanism does support the Virtual Synchrony property."
    /// The SP already guarantees every member delivers exactly the same
    /// per-sender message counts per era; announcing the era boundary as a
    /// view makes that agreement *visible*, so the application-level trace
    /// satisfies [`ps_trace::props::VirtualSynchrony`] with protocol eras
    /// as views.
    pub announce_views: bool,
    /// Abort a switch attempt that has not completed after this long: the
    /// process reverts to the old protocol and releases anything buffered,
    /// so a crash or partition during drain/flip cannot wedge the group.
    /// `SimTime::ZERO` disables the abort timer. The default is generous —
    /// healthy switches finish in milliseconds and never hit it.
    pub phase_timeout: SimTime,
    /// Broadcast variant: first retransmission delay for the manager's
    /// latest control broadcast (PREPARE until all OKs arrive, then
    /// SWITCH). Subsequent retries back off exponentially with jitter.
    /// `SimTime::ZERO` disables manager retransmission.
    pub retransmit_base: SimTime,
    /// Broadcast variant: cap on the retransmission backoff.
    pub retransmit_max: SimTime,
    /// Token variant: if the ring head sees no token for this long while
    /// idle, it regenerates a NORMAL token with a higher generation
    /// (members discard older tokens). Recovers from a token lost to a
    /// crash. `SimTime::ZERO` disables regeneration.
    pub token_regen: SimTime,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        Self {
            variant: SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(2) },
            observe_interval: SimTime::from_millis(100),
            observe_window: SimTime::from_millis(500),
            announce_views: false,
            phase_timeout: SimTime::from_secs_f64(30.0),
            retransmit_base: SimTime::from_secs_f64(2.0),
            retransmit_max: SimTime::from_secs_f64(8.0),
            token_regen: SimTime::from_secs_f64(5.0),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Normal,
    Switching,
}

/// The switching protocol (SP) — the paper's contribution, as a composite
/// layer embedding two complete protocol stacks.
///
/// Invariant (§2): **every process delivers all messages of the old
/// protocol before delivering any message of the new one.** In normal mode
/// application traffic flows through the current protocol; traffic
/// arriving on the other protocol's channel is buffered. When the oracle
/// requests a switch, members report how many messages they sent over the
/// current protocol; once a member has delivered that many messages from
/// every peer it flips — releasing the buffer — and the switch is complete
/// when every member has flipped. **Sends are never blocked** during
/// switching (they travel on the new protocol immediately), which is why
/// the paper reports the application-perceived hiccup is smaller than the
/// switch duration.
///
/// Assumes of the underlying protocols exactly what §2 states: no spurious
/// deliveries, at-most-once delivery, and exactly-once for switch
/// liveness. Control traffic must be loss-free (run the whole stack over a
/// reliable transport otherwise).
pub struct SwitchLayer {
    cfg: SwitchConfig,
    protos: [Stack; 2],
    /// Transport for the switch's own control traffic (Figure 1's private
    /// channel). Empty by default; give it a reliable layer to run the
    /// switch over lossy networks.
    control: Stack,
    ctl_seq: u64,
    oracle: Box<dyn Oracle>,
    handle: SwitchHandle,
    me: Option<ProcessId>,

    current: usize,
    era: u64,
    mode: Mode,
    /// Messages I sent over the current protocol this era.
    sent_current: u64,
    /// Messages I sent over the next protocol while switching.
    sent_next: u64,
    /// Per-sender count of messages delivered via the current protocol
    /// this era.
    delivered_from: BTreeMap<ProcessId, u64>,
    /// Deliveries from the non-current protocol, held back.
    buffer: Vec<(ProcessId, Message)>,
    /// The SWITCH vector, once known.
    expected: Option<CountVector>,
    switch_started: SimTime,

    // Broadcast-variant manager state.
    am_manager: bool,
    manager_oks: BTreeMap<ProcessId, u64>,

    // Token-variant state.
    /// Pending switch wish: the protocol index the oracle asked for. A
    /// wish is dropped, not executed, if the switch it asked for has
    /// already happened by the time a NORMAL token arrives (otherwise a
    /// second initiator's stale wish would flip the group right back).
    want_target: Option<usize>,
    holding_flush: Option<RingToken>,
    held_token: Option<RingToken>,
    hold_gen: u32,
    /// Highest token generation seen; older tokens are stale and dropped.
    token_gen: u64,
    /// When this process last accepted a token (regeneration watchdog).
    last_token_at: SimTime,

    // Fault tolerance (abort / retransmission), both variants.
    /// Attempt round this process is participating in (valid while
    /// switching; broadcast variant).
    joined_round: u64,
    /// Highest round finished here — flipped or aborted. Prepares for
    /// rounds at or below this are stragglers from a dead attempt.
    done_round: u64,
    /// Manager's latest control broadcast, kept for retransmission.
    last_ctl: Option<Bytes>,
    /// Guards against re-broadcasting SWITCH on duplicate OKs.
    switch_sent: bool,
    /// Generation counters distinguishing live from stale one-shot timers
    /// (timers cannot be cancelled).
    abort_gen: u32,
    retrans_gen: u32,
    /// Current retransmission backoff delay.
    retrans_delay: SimTime,
    /// After an abort, deliveries from the non-current protocol pass
    /// straight to the application instead of buffering: with the attempt
    /// abandoned there may never be a flip to release them. Cleared when
    /// the next attempt starts.
    absorb_other: bool,
    /// Private deterministic stream for retransmission jitter — separate
    /// from the node's stream so backoff randomness never perturbs
    /// application or protocol behaviour.
    rng: DetRng,

    // Oracle observation.
    recent: VecDeque<(SimTime, ProcessId)>,
}

impl std::fmt::Debug for SwitchLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchLayer")
            .field("current", &self.current)
            .field("era", &self.era)
            .field("mode", &self.mode)
            .field("buffered", &self.buffer.len())
            .finish()
    }
}

const OBSERVE: u32 = 1;
/// Timer tokens carry a kind in the top byte and a generation in the low
/// 24 bits (one-shot timers cannot be cancelled; a stale firing's
/// generation no longer matches and is ignored).
const FLAG_MASK: u32 = 0xFF00_0000;
const GEN_MASK: u32 = 0x00FF_FFFF;
/// Idle-token hold expiry (token variant).
const HOLD_FLAG: u32 = 0x8000_0000;
/// Switch-attempt abort deadline.
const ABORT_FLAG: u32 = 0x4000_0000;
/// Manager control-broadcast retransmission (broadcast variant).
const RETRANS_FLAG: u32 = 0x2000_0000;
/// Lost-token regeneration watchdog at the ring head (token variant).
const REGEN_FLAG: u32 = 0x1000_0000;
/// Sequence-number base for control-message envelopes (never collides with
/// application messages).
const CTL_SEQ_BASE: u64 = 1 << 48;

fn chan(idx: usize) -> ChannelId {
    match idx {
        0 => ChannelId::PROTO_A,
        _ => ChannelId::PROTO_B,
    }
}

/// Environment handed to a sub-stack: transmissions come out channel-
/// tagged through the outer context, deliveries are captured for the
/// switch logic, timers pass straight through (layer ids are globally
/// unique per process).
struct SubEnv<'a, 'b> {
    ctx: &'a mut LayerCtx<'b>,
    channel: ChannelId,
    sink: &'a mut Vec<(ProcessId, Message)>,
}

impl StackEnv for SubEnv<'_, '_> {
    fn me(&self) -> ProcessId {
        self.ctx.me()
    }
    fn group(&self) -> &[ProcessId] {
        self.ctx.group_slice()
    }
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn rng(&mut self) -> &mut DetRng {
        self.ctx.rng()
    }
    fn transmit(&mut self, frame: Frame) {
        self.ctx.send_down(Frame::new(frame.dest, channel::mux(self.channel, frame.bytes)));
    }
    fn deliver(&mut self, src: ProcessId, msg: Message) {
        self.sink.push((src, msg));
    }
    fn set_timer(&mut self, delay: SimTime, id: LayerId, token: u32) {
        self.ctx.set_timer_for(id, delay, token);
    }
    fn obs(&self) -> Option<&ps_obs::Recorder> {
        self.ctx.obs()
    }
    fn cause(&self) -> ps_obs::CauseId {
        self.ctx.cause()
    }
    fn set_cause(&mut self, cause: ps_obs::CauseId) -> ps_obs::CauseId {
        self.ctx.set_cause(cause)
    }
    fn prof(&self) -> Option<&ps_prof::Profiler> {
        self.ctx.prof()
    }
}

/// Records one switch-phase event if observability is on, parented to the
/// event being processed (the control frame or timer that triggered the
/// phase transition).
fn record_phase(ctx: &LayerCtx<'_>, phase: SpPhase, from: usize, to: usize) {
    if let Some(o) = ctx.obs() {
        o.record_caused(
            ctx.now().as_micros(),
            u32::from(ctx.me().0),
            ctx.cause(),
            ObsEvent::SwitchPhase { phase, from: from as u8, to: to as u8 },
        );
    }
}

impl SwitchLayer {
    /// Creates a switch over two complete protocol stacks.
    ///
    /// `proto_a` is active first. Build both stacks with the same
    /// [`ps_stack::IdGen`] the outer stack uses, so timer routing works.
    /// The returned [`SwitchHandle`] observes this process's switch state.
    pub fn new(
        cfg: SwitchConfig,
        proto_a: Stack,
        proto_b: Stack,
        oracle: Box<dyn Oracle>,
    ) -> (Self, SwitchHandle) {
        let handle = SwitchHandle::new();
        let layer = Self {
            cfg,
            protos: [proto_a, proto_b],
            control: Stack::new(vec![]),
            ctl_seq: 0,
            oracle,
            handle: handle.clone(),
            me: None,
            current: 0,
            era: 0,
            mode: Mode::Normal,
            sent_current: 0,
            sent_next: 0,
            delivered_from: BTreeMap::new(),
            buffer: Vec::new(),
            expected: None,
            switch_started: SimTime::ZERO,
            am_manager: false,
            manager_oks: BTreeMap::new(),
            want_target: None,
            holding_flush: None,
            held_token: None,
            hold_gen: 0,
            token_gen: 0,
            last_token_at: SimTime::ZERO,
            joined_round: 0,
            done_round: 0,
            last_ctl: None,
            switch_sent: false,
            abort_gen: 0,
            retrans_gen: 0,
            retrans_delay: SimTime::ZERO,
            absorb_other: false,
            rng: DetRng::new(0),
            recent: VecDeque::new(),
        };
        (layer, handle)
    }

    /// Replaces the control-channel transport (default: none — control
    /// frames ride the raw network). The switching protocol requires its
    /// control traffic to be delivered exactly once; on a lossy network,
    /// supply a stack containing `ps_protocols::ReliableLayer`.
    pub fn with_control_stack(mut self, stack: Stack) -> Self {
        self.control = stack;
        self
    }

    /// Sends switch-control `bytes` to `dest` through the control stack,
    /// wrapped in a message envelope so ordinary layers can transport it.
    fn send_control(&mut self, dest: ps_stack::Cast, bytes: Bytes, ctx: &mut LayerCtx<'_>) {
        self.ctl_seq += 1;
        let envelope = Message::new(ctx.me(), CTL_SEQ_BASE + self.ctl_seq, bytes);
        let mut sink = Vec::new();
        {
            let mut env = SubEnv { ctx, channel: ChannelId::CONTROL, sink: &mut sink };
            self.control.send_bytes(dest, envelope.to_bytes(), &mut env);
        }
        debug_assert!(sink.is_empty(), "control stack delivered during send");
    }

    /// Index of the protocol new sends go to right now.
    fn send_target(&self) -> usize {
        match self.mode {
            Mode::Normal => self.current,
            Mode::Switching => 1 - self.current,
        }
    }

    fn run_sub<R>(
        &mut self,
        idx: usize,
        ctx: &mut LayerCtx<'_>,
        f: impl FnOnce(&mut Stack, &mut SubEnv<'_, '_>) -> R,
    ) -> (R, Vec<(ProcessId, Message)>) {
        let mut sink = Vec::new();
        let r = {
            let mut env = SubEnv { ctx, channel: chan(idx), sink: &mut sink };
            f(&mut self.protos[idx], &mut env)
        };
        (r, sink)
    }

    fn process_deliveries(
        &mut self,
        idx: usize,
        sink: Vec<(ProcessId, Message)>,
        ctx: &mut LayerCtx<'_>,
    ) {
        for (src, msg) in sink {
            if idx == self.current {
                self.deliver_current(src, msg, ctx);
            } else if self.absorb_other {
                self.deliver_foreign(src, msg, ctx);
            } else {
                self.buffer.push((src, msg));
                let depth = self.buffer.len();
                self.handle.update(|s| s.buffered_peak = s.buffered_peak.max(depth));
            }
        }
        self.try_flip(ctx);
    }

    /// Delivers a current-protocol message to the application, with era
    /// bookkeeping and load observation.
    fn deliver_current(&mut self, src: ProcessId, msg: Message, ctx: &mut LayerCtx<'_>) {
        *self.delivered_from.entry(msg.id.sender).or_insert(0) += 1;
        self.recent.push_back((ctx.now(), msg.id.sender));
        self.handle.update(|s| s.delivered += 1);
        ctx.deliver_up(src, msg.to_bytes());
    }

    /// Delivers a message that arrived on the *non-current* protocol after
    /// an abort. It counts for load observation and delivery stats but not
    /// for `delivered_from`: the era's drain accounting covers only
    /// current-protocol traffic, and the sender likewise zeroed its
    /// `sent_next` when its own attempt aborted.
    fn deliver_foreign(&mut self, src: ProcessId, msg: Message, ctx: &mut LayerCtx<'_>) {
        self.recent.push_back((ctx.now(), msg.id.sender));
        self.handle.update(|s| s.delivered += 1);
        ctx.deliver_up(src, msg.to_bytes());
    }

    fn enter_switching(&mut self, ctx: &mut LayerCtx<'_>) {
        if self.mode == Mode::Normal {
            self.mode = Mode::Switching;
            self.switch_started = ctx.now();
            self.expected = None;
            self.absorb_other = false;
            self.handle.update(|s| s.switching = true);
            record_phase(ctx, SpPhase::PrepareSeen, self.current, 1 - self.current);
            if self.cfg.phase_timeout > SimTime::ZERO {
                self.abort_gen = self.abort_gen.wrapping_add(1) & GEN_MASK;
                ctx.set_timer(self.cfg.phase_timeout, ABORT_FLAG | self.abort_gen);
            }
        }
    }

    /// Gives up on the in-flight switch attempt: revert to the old
    /// protocol, release anything buffered, and drop all attempt state so
    /// a later attempt starts clean. The era does **not** advance — eras
    /// count completed switches, and keeping it stable means members that
    /// never saw this attempt (the far side of a partition) remain in
    /// agreement with members that aborted it.
    fn abort(&mut self, ctx: &mut LayerCtx<'_>) {
        record_phase(ctx, SpPhase::Aborted, self.current, 1 - self.current);
        self.mode = Mode::Normal;
        self.expected = None;
        self.am_manager = false;
        self.manager_oks.clear();
        self.last_ctl = None;
        self.switch_sent = false;
        self.want_target = None;
        self.holding_flush = None;
        self.done_round = self.done_round.max(self.joined_round);
        // Whatever we sent over the next protocol is now outside the era
        // accounting; receivers absorb it the same way (deliver_foreign).
        self.sent_next = 0;
        // Invalidate any token from the dead attempt that is still
        // circulating; regeneration will mint a successor generation.
        self.token_gen += 1;
        self.absorb_other = true;
        let buffered = std::mem::take(&mut self.buffer);
        for (src, msg) in buffered {
            self.deliver_foreign(src, msg, ctx);
        }
        self.handle.update(|s| {
            s.switching = false;
            s.aborted += 1;
        });
    }

    /// (Re)sends the manager's latest control broadcast and arms the next
    /// retransmission with exponential backoff plus jitter.
    fn send_ctl_broadcast(&mut self, bytes: Bytes, ctx: &mut LayerCtx<'_>) {
        self.last_ctl = Some(bytes.clone());
        self.send_control(ps_stack::Cast::All, bytes, ctx);
        self.retrans_delay = self.cfg.retransmit_base;
        self.arm_retransmit(ctx);
    }

    fn arm_retransmit(&mut self, ctx: &mut LayerCtx<'_>) {
        if self.retrans_delay == SimTime::ZERO {
            return;
        }
        let jitter = self.rng.jitter(SimTime::from_micros(self.retrans_delay.as_micros() / 4));
        self.retrans_gen = self.retrans_gen.wrapping_add(1) & GEN_MASK;
        ctx.set_timer(self.retrans_delay + jitter, RETRANS_FLAG | self.retrans_gen);
    }

    fn on_retransmit_timer(&mut self, ctx: &mut LayerCtx<'_>) {
        if self.mode != Mode::Switching {
            return;
        }
        let Some(bytes) = self.last_ctl.clone() else { return };
        self.send_control(ps_stack::Cast::All, bytes, ctx);
        let doubled = SimTime::from_micros(self.retrans_delay.as_micros().saturating_mul(2));
        self.retrans_delay = doubled.min(self.cfg.retransmit_max);
        self.arm_retransmit(ctx);
    }

    /// Ring-head watchdog: if no token has been seen for a full regen
    /// interval while idle, the token died with a crashed node — mint a
    /// replacement with a higher generation.
    fn on_regen_timer(&mut self, ctx: &mut LayerCtx<'_>) {
        if self.cfg.token_regen == SimTime::ZERO {
            return;
        }
        ctx.set_timer(self.cfg.token_regen, REGEN_FLAG);
        let quiet = ctx.now().saturating_sub(self.last_token_at);
        if self.mode == Mode::Normal
            && self.held_token.is_none()
            && self.holding_flush.is_none()
            && quiet >= self.cfg.token_regen
        {
            self.token_gen += 1;
            let mut token = RingToken::normal(self.era);
            token.gen = self.token_gen;
            self.handle_token(token, ctx);
        }
    }

    /// Flips to the new protocol if the SWITCH vector is satisfied.
    fn try_flip(&mut self, ctx: &mut LayerCtx<'_>) {
        if self.mode != Mode::Switching {
            return;
        }
        let Some(vector) = &self.expected else { return };
        let drained =
            vector.iter().all(|(q, c)| self.delivered_from.get(q).copied().unwrap_or(0) >= *c);
        if !drained {
            return;
        }
        record_phase(ctx, SpPhase::DrainComplete, self.current, 1 - self.current);
        // Flip.
        let from = self.current;
        self.current = 1 - self.current;
        self.era += 1;
        self.mode = Mode::Normal;
        self.sent_current = self.sent_next;
        self.sent_next = 0;
        self.delivered_from.clear();
        self.expected = None;
        self.am_manager = false;
        self.manager_oks.clear();
        self.last_ctl = None;
        self.switch_sent = false;
        self.absorb_other = false;
        self.done_round = self.done_round.max(self.joined_round);
        let record = SwitchRecord {
            from,
            to: self.current,
            started_at: self.switch_started,
            completed_at: ctx.now(),
        };
        self.handle.update(|s| {
            s.records.push(record);
            s.switching = false;
            s.current = 1 - from;
        });
        record_phase(ctx, SpPhase::Flip, from, self.current);
        if self.cfg.announce_views {
            // §8: the switch *is* a view change. Every member delivers the
            // same message set per era (the count vector), so announcing
            // the era boundary as a view yields a virtually synchronous
            // application trace. The announcement is fabricated
            // identically at every member (same id, same body).
            let group = ctx.group();
            let vm = Message::view_change(group[0], CTL_SEQ_BASE + self.era, self.era, group);
            ctx.deliver_up(vm.id.sender, vm.to_bytes());
        }
        // Release the buffer — these are new-era deliveries.
        let buffered = std::mem::take(&mut self.buffer);
        for (src, msg) in buffered {
            self.deliver_current(src, msg, ctx);
        }
        record_phase(ctx, SpPhase::BufferRelease, from, self.current);
        // Token variant: a FLUSH held for our drain can move on now.
        if let Some(token) = self.holding_flush.take() {
            self.forward_token(token, ctx);
        }
    }

    // ---- broadcast variant -------------------------------------------------

    fn initiate_broadcast(&mut self, ctx: &mut LayerCtx<'_>) {
        self.joined_round = self.done_round + 1;
        self.enter_switching(ctx);
        self.am_manager = true;
        self.handle.update(|s| s.initiated += 1);
        let msg = Control::Prepare { era: self.era + 1, round: self.joined_round };
        self.send_ctl_broadcast(msg.to_bytes(), ctx);
    }

    /// Handles a control envelope delivered by the control stack.
    fn dispatch_control(&mut self, envelope: Message, ctx: &mut LayerCtx<'_>) {
        let origin = envelope.id.sender;
        match self.cfg.variant {
            SwitchVariant::Broadcast => self.on_control(origin, envelope.body, ctx),
            SwitchVariant::TokenRing { .. } => {
                let Ok(token) = RingToken::from_bytes(&envelope.body) else { return };
                self.handle_token(token, ctx);
            }
        }
    }

    fn on_control(&mut self, src: ProcessId, bytes: Bytes, ctx: &mut LayerCtx<'_>) {
        let Ok(msg) = Control::from_bytes(&bytes) else { return };
        match msg {
            Control::Prepare { era, round } => {
                // Rounds at or below done_round are stragglers from an
                // attempt this process already finished (flipped or
                // aborted); joining them would corrupt era accounting.
                if era != self.era + 1 || round <= self.done_round {
                    return;
                }
                if self.mode == Mode::Switching && round != self.joined_round {
                    return; // already committed to a different attempt
                }
                self.joined_round = round;
                self.enter_switching(ctx);
                // A duplicate PREPARE (manager retransmission) falls
                // through to here and idempotently re-sends the OK — the
                // original may have been lost.
                let ok = Control::Ok { era, round, member: ctx.me(), count: self.sent_current };
                self.send_control(ps_stack::Cast::To(src), ok.to_bytes(), ctx);
            }
            Control::Ok { era, round, member, count } => {
                if !self.am_manager || era != self.era + 1 || round != self.joined_round {
                    return;
                }
                self.manager_oks.insert(member, count);
                let group = ctx.group();
                if !self.switch_sent && group.iter().all(|m| self.manager_oks.contains_key(m)) {
                    let vector: CountVector =
                        self.manager_oks.iter().map(|(&p, &c)| (p, c)).collect();
                    let sw = Control::Switch { era, round, vector };
                    self.switch_sent = true;
                    self.send_ctl_broadcast(sw.to_bytes(), ctx);
                }
            }
            Control::Switch { era, round, vector } => {
                if era != self.era + 1 || self.mode != Mode::Switching || round != self.joined_round
                {
                    return;
                }
                self.expected = Some(vector);
                self.try_flip(ctx);
            }
        }
    }

    // ---- token variant -----------------------------------------------------

    fn ring_next(ctx: &LayerCtx<'_>) -> ProcessId {
        let group = ctx.group();
        let me = ctx.me();
        let idx = group.iter().position(|&p| p == me).expect("member of own group");
        group[(idx + 1) % group.len()]
    }

    fn forward_token(&mut self, token: RingToken, ctx: &mut LayerCtx<'_>) {
        let next = Self::ring_next(ctx);
        self.send_control(ps_stack::Cast::To(next), token.to_bytes(), ctx);
    }

    /// Is this in-rotation token (initiated by me) still the attempt I am
    /// executing? False once I aborted: the era did not advance, so the
    /// token's `era + 1` stamp alone cannot tell a live attempt from a
    /// dead one.
    fn my_live_attempt(&self, token: &RingToken) -> bool {
        self.mode == Mode::Switching && token.era == self.era + 1
    }

    fn handle_token(&mut self, mut token: RingToken, ctx: &mut LayerCtx<'_>) {
        // Generation fencing: a regenerated token obsoletes any older one
        // still circulating (or any token from an attempt we aborted).
        if token.gen < self.token_gen {
            return;
        }
        self.token_gen = token.gen;
        self.last_token_at = ctx.now();
        let me = ctx.me();
        match token.mode {
            TokenMode::Normal => {
                let wanted = self.want_target.take().filter(|&t| t != self.current);
                if wanted.is_some() && self.mode == Mode::Normal {
                    self.enter_switching(ctx);
                    self.handle.update(|s| s.initiated += 1);
                    token.mode = TokenMode::Prepare;
                    token.era = self.era + 1;
                    token.initiator = me;
                    token.counts = vec![(me, self.sent_current)];
                    self.forward_token(token, ctx);
                    return;
                }
                let idle_hold = match self.cfg.variant {
                    SwitchVariant::TokenRing { idle_hold } => idle_hold,
                    SwitchVariant::Broadcast => SimTime::ZERO,
                };
                if idle_hold > SimTime::ZERO {
                    self.held_token = Some(token);
                    self.hold_gen = self.hold_gen.wrapping_add(1) & GEN_MASK;
                    ctx.set_timer(idle_hold, HOLD_FLAG | self.hold_gen);
                } else {
                    self.forward_token(token, ctx);
                }
            }
            TokenMode::Prepare => {
                if token.initiator == me {
                    if !self.my_live_attempt(&token) {
                        return; // attempt aborted; let the token die
                    }
                    // Counts complete: disseminate the vector.
                    self.expected = Some(token.counts.clone());
                    token.mode = TokenMode::Switch;
                    self.forward_token(token, ctx);
                    self.try_flip(ctx);
                } else {
                    if token.era != self.era + 1 {
                        return; // stale
                    }
                    self.enter_switching(ctx);
                    if !token.counts.iter().any(|&(p, _)| p == me) {
                        token.counts.push((me, self.sent_current));
                    }
                    self.forward_token(token, ctx);
                }
            }
            TokenMode::Switch => {
                if token.initiator == me {
                    // Legitimate either mid-switch or just after our own
                    // flip advanced the era; dead if we aborted.
                    if !self.my_live_attempt(&token) && token.era != self.era {
                        return;
                    }
                    // Vector has gone all the way around: flush rotation.
                    token.mode = TokenMode::Flush;
                    if self.mode == Mode::Normal {
                        self.forward_token(token, ctx);
                    } else {
                        self.holding_flush = Some(token);
                    }
                } else {
                    if token.era != self.era + 1 {
                        return;
                    }
                    if self.mode != Mode::Switching {
                        return; // aborted attempt; don't resurrect it
                    }
                    self.expected = Some(token.counts.clone());
                    self.forward_token(token, ctx);
                    self.try_flip(ctx);
                }
            }
            TokenMode::Flush => {
                if token.initiator == me {
                    if token.era != self.era && !self.my_live_attempt(&token) {
                        return; // flush of an attempt we aborted
                    }
                    // Third rotation complete: the switch has finished at
                    // every member. Back to an idle token.
                    let mut idle = RingToken::normal(self.era);
                    idle.gen = token.gen;
                    self.handle_token(idle, ctx);
                } else if self.mode == Mode::Normal {
                    self.forward_token(token, ctx);
                } else {
                    self.holding_flush = Some(token);
                }
            }
        }
    }

    // ---- oracle ------------------------------------------------------------

    fn observe(&mut self, ctx: &mut LayerCtx<'_>) {
        let now = ctx.now();
        let cutoff = now.saturating_sub(self.cfg.observe_window);
        while self.recent.front().is_some_and(|&(t, _)| t < cutoff) {
            self.recent.pop_front();
        }
        let mut senders: Vec<ProcessId> = self.recent.iter().map(|&(_, s)| s).collect();
        senders.sort_unstable();
        senders.dedup();
        let obs = SwitchObs {
            now,
            current: self.current,
            active_senders: senders.len(),
            recent_deliveries: self.recent.len() as u64,
            switching: self.mode == Mode::Switching,
            last_switch: self.handle.update(|s| s.records.last().map(|r| r.completed_at)),
        };
        if let Some(target) = self.oracle.decide(&obs) {
            if target != self.current && self.mode == Mode::Normal {
                match self.cfg.variant {
                    SwitchVariant::Broadcast => self.initiate_broadcast(ctx),
                    SwitchVariant::TokenRing { .. } => {
                        self.want_target = Some(target);
                        // If we are sitting on an idle token, use it now.
                        if let Some(token) = self.held_token.take() {
                            self.handle_token(token, ctx);
                        }
                    }
                }
            }
        }
    }
}

impl Layer for SwitchLayer {
    fn name(&self) -> &'static str {
        "switch"
    }

    fn on_launch(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.me());
        // Private jitter stream, seeded from identity only: deterministic
        // per process, independent of the node's main RNG stream.
        self.rng = DetRng::new(0x5317_C81A_F00D_u64 ^ u64::from(ctx.me().0));
        // Launch both sub-protocols (the inactive one keeps running — its
        // tokens rotate, its timers fire — exactly as in Horus) and the
        // control transport.
        for idx in 0..2 {
            let ((), sink) = self.run_sub(idx, ctx, |stack, env| stack.launch(env));
            self.process_deliveries(idx, sink, ctx);
        }
        {
            let mut sink = Vec::new();
            let mut env = SubEnv { ctx, channel: ChannelId::CONTROL, sink: &mut sink };
            self.control.launch(&mut env);
            debug_assert!(sink.is_empty());
        }
        ctx.set_timer(self.cfg.observe_interval, OBSERVE);
        if let SwitchVariant::TokenRing { .. } = self.cfg.variant {
            if ctx.me() == ctx.group()[0] {
                self.handle_token(RingToken::normal(0), ctx);
                if self.cfg.token_regen > SimTime::ZERO {
                    ctx.set_timer(self.cfg.token_regen, REGEN_FLAG);
                }
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut LayerCtx<'_>) {
        // Forward the restart to both sub-protocols and the control
        // transport so they re-arm their own timers (retransmission
        // sweeps, ordering-token holds, …).
        for idx in 0..2 {
            let ((), sink) = self.run_sub(idx, ctx, |stack, env| stack.restart(env));
            self.process_deliveries(idx, sink, ctx);
        }
        {
            let mut sink = Vec::new();
            {
                let mut env = SubEnv { ctx, channel: ChannelId::CONTROL, sink: &mut sink };
                self.control.restart(&mut env);
            }
            for (_, envelope) in sink {
                self.dispatch_control(envelope, ctx);
            }
        }
        // Every timer below died with the crashed incarnation.
        ctx.set_timer(self.cfg.observe_interval, OBSERVE);
        if self.mode == Mode::Switching {
            if self.cfg.phase_timeout > SimTime::ZERO {
                // The attempt gets a fresh full deadline from recovery.
                self.abort_gen = self.abort_gen.wrapping_add(1) & GEN_MASK;
                ctx.set_timer(self.cfg.phase_timeout, ABORT_FLAG | self.abort_gen);
            }
            if self.am_manager {
                if let Some(bytes) = self.last_ctl.clone() {
                    // Replies may have burned while we were down; resend
                    // immediately and restart the backoff schedule.
                    self.send_ctl_broadcast(bytes, ctx);
                }
            }
        }
        if self.held_token.is_some() {
            // We crashed while sitting on the idle token; without this the
            // ring would stall until regeneration.
            if let SwitchVariant::TokenRing { idle_hold } = self.cfg.variant {
                if idle_hold > SimTime::ZERO {
                    ctx.set_timer(idle_hold, HOLD_FLAG | self.hold_gen);
                }
            }
        }
        if let SwitchVariant::TokenRing { .. } = self.cfg.variant {
            if ctx.me() == ctx.group()[0] && self.cfg.token_regen > SimTime::ZERO {
                ctx.set_timer(self.cfg.token_regen, REGEN_FLAG);
            }
        }
    }

    fn on_down(&mut self, frame: Frame, ctx: &mut LayerCtx<'_>) {
        let target = self.send_target();
        if target == self.current {
            self.sent_current += 1;
        } else {
            self.sent_next += 1;
        }
        let ((), sink) =
            self.run_sub(target, ctx, |stack, env| stack.send_bytes(frame.dest, frame.bytes, env));
        self.process_deliveries(target, sink, ctx);
    }

    fn on_up(&mut self, src: ProcessId, bytes: Bytes, ctx: &mut LayerCtx<'_>) {
        let Ok((ch, payload)) = channel::demux(&bytes) else { return };
        match ch {
            ChannelId::CONTROL => {
                let mut sink = Vec::new();
                {
                    let mut env = SubEnv { ctx, channel: ChannelId::CONTROL, sink: &mut sink };
                    self.control.receive(src, payload, &mut env);
                }
                for (_, envelope) in sink {
                    self.dispatch_control(envelope, ctx);
                }
            }
            ChannelId::PROTO_A | ChannelId::PROTO_B => {
                let idx = usize::from(ch.0 - 1);
                let ((), sink) =
                    self.run_sub(idx, ctx, |stack, env| stack.receive(src, payload, env));
                self.process_deliveries(idx, sink, ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u32, ctx: &mut LayerCtx<'_>) {
        if token == OBSERVE {
            self.observe(ctx);
            ctx.set_timer(self.cfg.observe_interval, OBSERVE);
            return;
        }
        match token & FLAG_MASK {
            HOLD_FLAG if token & GEN_MASK == self.hold_gen => {
                if let Some(t) = self.held_token.take() {
                    if self.want_target.is_some() {
                        self.handle_token(t, ctx);
                    } else {
                        self.forward_token(t, ctx);
                    }
                }
            }
            ABORT_FLAG if token & GEN_MASK == self.abort_gen => {
                if self.mode == Mode::Switching {
                    self.abort(ctx);
                }
            }
            RETRANS_FLAG if token & GEN_MASK == self.retrans_gen => {
                self.on_retransmit_timer(ctx);
            }
            REGEN_FLAG => self.on_regen_timer(ctx),
            _ => {}
        }
    }

    fn route_timer(&mut self, id: LayerId, token: u32, ctx: &mut LayerCtx<'_>) -> bool {
        for idx in 0..2 {
            let (handled, sink) = self.run_sub(idx, ctx, |stack, env| stack.timer(id, token, env));
            if handled {
                self.process_deliveries(idx, sink, ctx);
                return true;
            }
            debug_assert!(sink.is_empty(), "unhandled timer produced deliveries");
        }
        // Control-transport timers (e.g. a reliable layer's retransmits).
        let mut sink = Vec::new();
        let handled = {
            let mut env = SubEnv { ctx, channel: ChannelId::CONTROL, sink: &mut sink };
            self.control.timer(id, token, &mut env)
        };
        for (_, envelope) in sink {
            self.dispatch_control(envelope, ctx);
        }
        handled
    }
}
