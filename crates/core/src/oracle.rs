//! Switch-decision oracles.
//!
//! The paper: "We assume that some kind of oracle decides when a switch is
//! necessary. … Which protocol is best at any time is an orthogonal
//! problem." These oracles make the experiments runnable: a scripted one
//! for controlled measurements, and load-threshold ones (with and without
//! hysteresis) for §7's adaptation and oscillation discussion.

use ps_obs::MetricsSampler;
use ps_simnet::SimTime;

/// What the switch layer can observe locally when consulting the oracle.
#[derive(Debug, Clone, Copy)]
pub struct SwitchObs {
    /// Current virtual time.
    pub now: SimTime,
    /// Index of the active protocol (0 or 1).
    pub current: usize,
    /// Distinct senders seen in the observation window.
    pub active_senders: usize,
    /// Messages delivered in the observation window.
    pub recent_deliveries: u64,
    /// Whether a switch is already in progress.
    pub switching: bool,
    /// When this process completed its most recent switch, if any.
    pub last_switch: Option<SimTime>,
}

/// Decides when (and to which protocol) to switch.
pub trait Oracle: Send {
    /// Inspect the observation; return `Some(target)` to request a switch.
    fn decide(&mut self, obs: &SwitchObs) -> Option<usize>;
}

/// Never switches. The default for processes that are not the decider.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverOracle;

impl Oracle for NeverOracle {
    fn decide(&mut self, _obs: &SwitchObs) -> Option<usize> {
        None
    }
}

/// Scripted switches at fixed times — the controlled-measurement oracle.
///
/// # Examples
///
/// ```
/// use ps_core::{ManualOracle, Oracle, SwitchObs};
/// use ps_simnet::SimTime;
///
/// let mut o = ManualOracle::new(vec![(SimTime::from_millis(100), 1)]);
/// let mut obs = SwitchObs {
///     now: SimTime::from_millis(50),
///     current: 0,
///     active_senders: 0,
///     recent_deliveries: 0,
///     switching: false,
///     last_switch: None,
/// };
/// assert_eq!(o.decide(&obs), None);
/// obs.now = SimTime::from_millis(120);
/// assert_eq!(o.decide(&obs), Some(1));
/// assert_eq!(o.decide(&obs), None); // one-shot
/// ```
#[derive(Debug, Clone)]
pub struct ManualOracle {
    plan: Vec<(SimTime, usize)>,
    next: usize,
}

impl ManualOracle {
    /// Creates the oracle from `(when, target)` pairs (must be sorted by
    /// time).
    pub fn new(plan: Vec<(SimTime, usize)>) -> Self {
        debug_assert!(plan.windows(2).all(|w| w[0].0 <= w[1].0), "plan must be time-sorted");
        Self { plan, next: 0 }
    }
}

impl Oracle for ManualOracle {
    fn decide(&mut self, obs: &SwitchObs) -> Option<usize> {
        if self.next < self.plan.len() && obs.now >= self.plan[self.next].0 {
            let target = self.plan[self.next].1;
            self.next += 1;
            if target != obs.current {
                return Some(target);
            }
        }
        None
    }
}

/// Load-threshold oracle with hysteresis and an optional post-switch
/// cooldown, for the sequencer/token hybrid.
///
/// Below `threshold - hysteresis` active senders it prefers protocol
/// `low_proto` (the sequencer: low latency at low load); above
/// `threshold + hysteresis` it prefers `high_proto` (the token: scalable
/// under high load). Inside the band it leaves the current protocol alone —
/// the paper's fix for oscillation ("If switching too aggressively, the
/// resulting protocol starts oscillating. If we make our protocol less
/// aggressive (by adding a hysteresis)…", §7). Set `hysteresis` to zero to
/// reproduce the oscillation.
#[derive(Debug, Clone)]
pub struct ThresholdOracle {
    /// Crossover point in active senders.
    pub threshold: usize,
    /// Half-width of the no-action band.
    pub hysteresis: usize,
    /// Protocol index to use under low load.
    pub low_proto: usize,
    /// Protocol index to use under high load.
    pub high_proto: usize,
    /// Refractory period after a completed switch. Delivery can stall
    /// briefly while a flipped member's buffer drains; without a cooldown
    /// that stall reads as "no active senders" and triggers a flap back.
    pub cooldown: SimTime,
}

impl ThresholdOracle {
    /// Creates the oracle; protocol 0 is used under low load, protocol 1
    /// under high load.
    pub fn new(threshold: usize, hysteresis: usize) -> Self {
        Self { threshold, hysteresis, low_proto: 0, high_proto: 1, cooldown: SimTime::ZERO }
    }

    /// Adds a refractory period after each completed switch.
    pub fn with_cooldown(mut self, cooldown: SimTime) -> Self {
        self.cooldown = cooldown;
        self
    }
}

impl Oracle for ThresholdOracle {
    fn decide(&mut self, obs: &SwitchObs) -> Option<usize> {
        if obs.switching {
            return None;
        }
        if let Some(last) = obs.last_switch {
            if obs.now.saturating_sub(last) < self.cooldown {
                return None;
            }
        }
        let n = obs.active_senders;
        if n > self.threshold + self.hysteresis && obs.current != self.high_proto {
            Some(self.high_proto)
        } else if n + self.hysteresis < self.threshold && obs.current != self.low_proto {
            Some(self.low_proto)
        } else {
            None
        }
    }
}

/// Metrics-driven oracle: switches on *measured* load from the sim's
/// [`MetricsSampler`] instead of the switch layer's local sender count.
///
/// Each decision reads the latest [`LoadSample`](ps_obs::LoadSample) and
/// reduces it to one load figure — the maximum of shared-medium
/// utilization and the sequencer node's CPU utilization, both in permille.
/// Those are exactly the two resources whose saturation produces the
/// paper's Figure 2 crossover: the bus fills with per-message sequencer
/// traffic, and the sequencer's CPU serializes every message in the group.
/// Sustained load at or above `high_permille` requests `high_proto` (the
/// token protocol); load at or below `low_permille` requests `low_proto`
/// (the sequencer). The gap between the two watermarks is the hysteresis
/// band, and `cooldown` adds the same post-switch refractory period as
/// [`ThresholdOracle`].
///
/// `min_samples` consecutive qualifying samples are required before either
/// switch fires, so one bursty window cannot flap the group.
#[derive(Debug, Clone)]
pub struct LoadOracle {
    sampler: MetricsSampler,
    /// Load (permille) at or above which `high_proto` is requested.
    pub high_permille: u32,
    /// Load (permille) at or below which `low_proto` is requested.
    pub low_permille: u32,
    /// Protocol index for the low-load regime (the sequencer).
    pub low_proto: usize,
    /// Protocol index for the high-load regime (the token ring).
    pub high_proto: usize,
    /// Refractory period after a completed switch.
    pub cooldown: SimTime,
    /// Consecutive qualifying samples required before switching.
    pub min_samples: u32,
    /// Timestamp of the newest sample already counted (avoids counting
    /// one window twice when decisions outpace sampling).
    seen_up_to_us: u64,
    high_streak: u32,
    low_streak: u32,
}

impl LoadOracle {
    /// Creates the oracle reading from `sampler`, requesting protocol 1
    /// when load reaches `high_permille` and protocol 0 when it falls to
    /// `low_permille`.
    ///
    /// # Panics
    ///
    /// Panics unless `low_permille < high_permille` (the watermarks must
    /// leave a hysteresis band).
    pub fn new(sampler: MetricsSampler, high_permille: u32, low_permille: u32) -> Self {
        assert!(low_permille < high_permille, "watermarks must leave a hysteresis band");
        Self {
            sampler,
            high_permille,
            low_permille,
            low_proto: 0,
            high_proto: 1,
            cooldown: SimTime::ZERO,
            min_samples: 2,
            seen_up_to_us: 0,
            high_streak: 0,
            low_streak: 0,
        }
    }

    /// Adds a refractory period after each completed switch.
    pub fn with_cooldown(mut self, cooldown: SimTime) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Sets how many consecutive qualifying samples arm a switch.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_min_samples(mut self, n: u32) -> Self {
        assert!(n > 0, "at least one sample must qualify");
        self.min_samples = n;
        self
    }

    /// The load figure a sample reduces to: the busier of the shared
    /// medium and the sequencer's CPU, in permille.
    fn load_of(sample: &ps_obs::LoadSample) -> u32 {
        sample.bus_util_permille.max(sample.seq_cpu_permille)
    }
}

impl Oracle for LoadOracle {
    fn decide(&mut self, obs: &SwitchObs) -> Option<usize> {
        // Consume fresh samples even while held, so the streaks reflect
        // the full load history rather than pausing with the protocol.
        if let Some(sample) = self.sampler.latest() {
            if sample.at_us > self.seen_up_to_us {
                self.seen_up_to_us = sample.at_us;
                let load = Self::load_of(&sample);
                if load >= self.high_permille {
                    self.high_streak += 1;
                } else {
                    self.high_streak = 0;
                }
                if load <= self.low_permille {
                    self.low_streak += 1;
                } else {
                    self.low_streak = 0;
                }
            }
        }
        if obs.switching {
            return None;
        }
        if let Some(last) = obs.last_switch {
            if obs.now.saturating_sub(last) < self.cooldown {
                return None;
            }
        }
        if self.high_streak >= self.min_samples && obs.current != self.high_proto {
            Some(self.high_proto)
        } else if self.low_streak >= self.min_samples && obs.current != self.low_proto {
            Some(self.low_proto)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(now_ms: u64, current: usize, active: usize) -> SwitchObs {
        SwitchObs {
            now: SimTime::from_millis(now_ms),
            current,
            active_senders: active,
            recent_deliveries: active as u64 * 10,
            switching: false,
            last_switch: None,
        }
    }

    #[test]
    fn never_never_switches() {
        assert_eq!(NeverOracle.decide(&obs(1, 0, 100)), None);
    }

    #[test]
    fn manual_fires_in_order() {
        let mut o =
            ManualOracle::new(vec![(SimTime::from_millis(10), 1), (SimTime::from_millis(20), 0)]);
        assert_eq!(o.decide(&obs(5, 0, 0)), None);
        assert_eq!(o.decide(&obs(11, 0, 0)), Some(1));
        assert_eq!(o.decide(&obs(12, 1, 0)), None);
        assert_eq!(o.decide(&obs(25, 1, 0)), Some(0));
        assert_eq!(o.decide(&obs(99, 0, 0)), None);
    }

    #[test]
    fn manual_skips_noop_switches() {
        let mut o = ManualOracle::new(vec![(SimTime::from_millis(10), 0)]);
        assert_eq!(o.decide(&obs(11, 0, 0)), None);
    }

    #[test]
    fn threshold_switches_up_and_down() {
        let mut o = ThresholdOracle::new(5, 1);
        // Low load on the low protocol: stay.
        assert_eq!(o.decide(&obs(1, 0, 2)), None);
        // High load: go to protocol 1.
        assert_eq!(o.decide(&obs(2, 0, 7)), Some(1));
        // In-band: stay wherever you are.
        assert_eq!(o.decide(&obs(3, 1, 5)), None);
        assert_eq!(o.decide(&obs(4, 0, 5)), None);
        // Load drops: back to protocol 0.
        assert_eq!(o.decide(&obs(5, 1, 3)), Some(0));
    }

    #[test]
    fn threshold_holds_during_switch() {
        let mut o = ThresholdOracle::new(5, 0);
        let mut observation = obs(1, 0, 10);
        observation.switching = true;
        assert_eq!(o.decide(&observation), None);
    }

    #[test]
    fn cooldown_suppresses_rapid_flapping() {
        let mut o = ThresholdOracle::new(5, 0).with_cooldown(SimTime::from_millis(500));
        let mut observation = obs(100, 1, 0); // load vanished right after a switch
        observation.last_switch = Some(SimTime::from_millis(80));
        assert_eq!(o.decide(&observation), None, "inside the cooldown");
        observation.now = SimTime::from_millis(700);
        assert_eq!(o.decide(&observation), Some(0), "after the cooldown");
    }

    #[test]
    fn load_oracle_needs_a_sustained_crossing() {
        use ps_obs::LoadSample;
        let sampler = MetricsSampler::new(1000);
        let mut o = LoadOracle::new(sampler.clone(), 300, 100).with_min_samples(2);
        let push = |at_us: u64, bus: u32| {
            sampler.push(LoadSample { at_us, bus_util_permille: bus, ..LoadSample::default() })
        };
        // No samples yet: no opinion.
        assert_eq!(o.decide(&obs(1, 0, 0)), None);
        // One hot window is not enough…
        push(1000, 500);
        assert_eq!(o.decide(&obs(2, 0, 0)), None);
        // …two consecutive hot windows are.
        push(2000, 400);
        assert_eq!(o.decide(&obs(3, 0, 0)), Some(1));
        // Already on the high protocol: nothing to do.
        assert_eq!(o.decide(&obs(4, 1, 0)), None);
        // A single cool window resets nothing downward yet…
        push(3000, 50);
        assert_eq!(o.decide(&obs(5, 1, 0)), None);
        // …but sustained quiet brings the sequencer back.
        push(4000, 0);
        assert_eq!(o.decide(&obs(6, 1, 0)), Some(0));
    }

    #[test]
    fn load_oracle_takes_the_max_of_bus_and_sequencer_cpu() {
        use ps_obs::LoadSample;
        let sampler = MetricsSampler::new(1000);
        let mut o = LoadOracle::new(sampler.clone(), 300, 100).with_min_samples(1);
        // Bus idle but the sequencer CPU is saturated: still high load.
        sampler.push(LoadSample {
            at_us: 1000,
            bus_util_permille: 10,
            seq_cpu_permille: 900,
            ..LoadSample::default()
        });
        assert_eq!(o.decide(&obs(1, 0, 0)), Some(1));
    }

    #[test]
    fn load_oracle_respects_switching_and_cooldown() {
        use ps_obs::LoadSample;
        let sampler = MetricsSampler::new(1000);
        let mut o = LoadOracle::new(sampler.clone(), 300, 100)
            .with_min_samples(1)
            .with_cooldown(SimTime::from_millis(500));
        sampler.push(LoadSample { at_us: 1000, bus_util_permille: 999, ..LoadSample::default() });
        let mut observation = obs(2, 0, 0);
        observation.switching = true;
        assert_eq!(o.decide(&observation), None, "held mid-switch");
        observation.switching = false;
        observation.last_switch = Some(SimTime::from_millis(1));
        assert_eq!(o.decide(&observation), None, "held in cooldown");
        observation.now = SimTime::from_millis(600);
        assert_eq!(o.decide(&observation), Some(1), "fires after cooldown");
    }

    #[test]
    fn load_oracle_counts_each_window_once() {
        use ps_obs::LoadSample;
        let sampler = MetricsSampler::new(1000);
        let mut o = LoadOracle::new(sampler.clone(), 300, 100).with_min_samples(2);
        sampler.push(LoadSample { at_us: 1000, bus_util_permille: 500, ..LoadSample::default() });
        // Two decisions against the same sample must not double-count it.
        assert_eq!(o.decide(&obs(1, 0, 0)), None);
        assert_eq!(o.decide(&obs(2, 0, 0)), None);
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn load_oracle_rejects_inverted_watermarks() {
        let _ = LoadOracle::new(MetricsSampler::new(1000), 100, 100);
    }

    #[test]
    fn zero_hysteresis_flaps_at_the_boundary() {
        let mut o = ThresholdOracle::new(5, 0);
        // 6 senders → high protocol; 4 senders → low protocol; repeat.
        assert_eq!(o.decide(&obs(1, 0, 6)), Some(1));
        assert_eq!(o.decide(&obs(2, 1, 4)), Some(0));
        assert_eq!(o.decide(&obs(3, 0, 6)), Some(1));
    }
}
