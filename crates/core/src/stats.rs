//! Observable switching-protocol state, shared out of the layer through a
//! cheap clonable handle (the simulation is single-threaded; `Rc` suffices).

use ps_simnet::SimTime;
use std::fmt;
use std::sync::{Arc, Mutex};

/// One completed switch as seen by one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchRecord {
    /// Protocol index switched away from.
    pub from: usize,
    /// Protocol index switched to.
    pub to: usize,
    /// When this process entered switching mode (PREPARE seen).
    pub started_at: SimTime,
    /// When this process flipped (old protocol drained, buffer released).
    pub completed_at: SimTime,
}

impl SwitchRecord {
    /// How long this process spent in switching mode.
    pub fn duration(&self) -> SimTime {
        self.completed_at.saturating_sub(self.started_at)
    }
}

/// Counters maintained by a [`crate::SwitchLayer`].
#[derive(Debug, Clone, Default)]
pub struct SwitchStats {
    /// Completed switches, in order.
    pub records: Vec<SwitchRecord>,
    /// Switches this process initiated (as manager/initiator).
    pub initiated: u64,
    /// Largest number of new-protocol messages buffered at once.
    pub buffered_peak: usize,
    /// Messages delivered to the application so far.
    pub delivered: u64,
    /// Index of the currently active protocol.
    pub current: usize,
    /// Whether the process is mid-switch right now.
    pub switching: bool,
}

/// Clonable, thread-safe view onto a switch layer's [`SwitchStats`].
#[derive(Clone, Default)]
pub struct SwitchHandle {
    inner: Arc<Mutex<SwitchStats>>,
}

impl fmt::Debug for SwitchHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.inner.lock().expect("switch stats poisoned");
        write!(
            f,
            "SwitchHandle(current={}, switches={}, switching={})",
            s.current,
            s.records.len(),
            s.switching
        )
    }
}

impl SwitchHandle {
    /// Creates a fresh handle (one per process).
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the stats.
    pub fn snapshot(&self) -> SwitchStats {
        self.inner.lock().expect("switch stats poisoned").clone()
    }

    /// Number of completed switches at this process.
    pub fn switches_completed(&self) -> usize {
        self.snapshot().records.len()
    }

    /// The currently active protocol index.
    pub fn current(&self) -> usize {
        self.snapshot().current
    }

    pub(crate) fn update<R>(&self, f: impl FnOnce(&mut SwitchStats) -> R) -> R {
        f(&mut self.inner.lock().expect("switch stats poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_duration() {
        let r = SwitchRecord {
            from: 0,
            to: 1,
            started_at: SimTime::from_millis(10),
            completed_at: SimTime::from_millis(41),
        };
        assert_eq!(r.duration(), SimTime::from_millis(31));
    }

    #[test]
    fn handle_shares_state() {
        let h = SwitchHandle::new();
        let h2 = h.clone();
        h.update(|s| s.initiated += 1);
        assert_eq!(h2.snapshot().initiated, 1);
        assert_eq!(h2.switches_completed(), 0);
    }
}
