//! Observable switching-protocol state, shared out of the layer through a
//! cheap clonable handle. The handle is `Arc<Mutex<..>>`, not `Rc`: the
//! parallel sweep runner reads handles from worker threads, and `Layer`
//! itself is `Send` so stacks can run on real threads (`ps-rt`). Reads are
//! poison-proof — the stats are plain counters, valid after any panic.
//!
//! The same switch phases also flow into the `ps-obs` event recorder when
//! one is attached; [`SwitchRecord::from_events`] rebuilds these records
//! from that event stream, and the two views must agree (property-tested
//! in `ps-harness`).

use ps_simnet::SimTime;
use std::fmt;
use std::sync::{Arc, Mutex};

/// One completed switch as seen by one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchRecord {
    /// Protocol index switched away from.
    pub from: usize,
    /// Protocol index switched to.
    pub to: usize,
    /// When this process entered switching mode (PREPARE seen).
    pub started_at: SimTime,
    /// When this process flipped (old protocol drained, buffer released).
    pub completed_at: SimTime,
}

impl SwitchRecord {
    /// How long this process spent in switching mode.
    pub fn duration(&self) -> SimTime {
        self.completed_at.saturating_sub(self.started_at)
    }

    /// Rebuilds `node`'s completed switch records from a recorded event
    /// stream — the [`SwitchStats`] view over a `ps-obs` recorder.
    ///
    /// Only completed switches (those whose flip made it into the ring)
    /// are returned, in completion order, matching what the live
    /// [`SwitchStats::records`] accumulated at that process.
    pub fn from_events(node: u32, events: &[ps_obs::TimedEvent]) -> Vec<SwitchRecord> {
        ps_obs::switch_timeline(events)
            .into_iter()
            .filter(|iv| iv.node == node)
            .filter_map(|iv| {
                iv.flip_at_us.map(|flip| SwitchRecord {
                    from: usize::from(iv.from),
                    to: usize::from(iv.to),
                    started_at: SimTime::from_micros(iv.prepare_at_us),
                    completed_at: SimTime::from_micros(flip),
                })
            })
            .collect()
    }
}

/// Counters maintained by a [`crate::SwitchLayer`].
#[derive(Debug, Clone, Default)]
pub struct SwitchStats {
    /// Completed switches, in order.
    pub records: Vec<SwitchRecord>,
    /// Switches this process initiated (as manager/initiator).
    pub initiated: u64,
    /// Switch attempts this process abandoned on timeout, reverting to the
    /// old protocol (see `SwitchConfig::phase_timeout`).
    pub aborted: u64,
    /// Largest number of new-protocol messages buffered at once.
    pub buffered_peak: usize,
    /// Messages delivered to the application so far.
    pub delivered: u64,
    /// Index of the currently active protocol.
    pub current: usize,
    /// Whether the process is mid-switch right now.
    pub switching: bool,
}

/// Clonable, thread-safe view onto a switch layer's [`SwitchStats`].
#[derive(Clone, Default)]
pub struct SwitchHandle {
    inner: Arc<Mutex<SwitchStats>>,
}

impl fmt::Debug for SwitchHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        write!(
            f,
            "SwitchHandle(current={}, switches={}, switching={})",
            s.current,
            s.records.len(),
            s.switching
        )
    }
}

impl SwitchHandle {
    /// Creates a fresh handle (one per process).
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the stats.
    pub fn snapshot(&self) -> SwitchStats {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of completed switches at this process.
    pub fn switches_completed(&self) -> usize {
        self.snapshot().records.len()
    }

    /// The currently active protocol index.
    pub fn current(&self) -> usize {
        self.snapshot().current
    }

    /// Switch attempts this process abandoned on timeout.
    pub fn aborted(&self) -> u64 {
        self.snapshot().aborted
    }

    /// Whether the process is mid-switch right now.
    pub fn switching(&self) -> bool {
        self.snapshot().switching
    }

    pub(crate) fn update<R>(&self, f: impl FnOnce(&mut SwitchStats) -> R) -> R {
        f(&mut self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_duration() {
        let r = SwitchRecord {
            from: 0,
            to: 1,
            started_at: SimTime::from_millis(10),
            completed_at: SimTime::from_millis(41),
        };
        assert_eq!(r.duration(), SimTime::from_millis(31));
    }

    #[test]
    fn from_events_rebuilds_completed_switches() {
        use ps_obs::{ObsEvent, SpPhase, TimedEvent};
        let sp = |at_us, node, phase, from, to| {
            TimedEvent::new(at_us, node, ObsEvent::SwitchPhase { phase, from, to })
        };
        let events = vec![
            sp(100, 0, SpPhase::PrepareSeen, 0, 1),
            sp(130, 1, SpPhase::PrepareSeen, 0, 1),
            sp(150, 0, SpPhase::DrainComplete, 0, 1),
            sp(150, 0, SpPhase::Flip, 0, 1),
            sp(150, 0, SpPhase::BufferRelease, 0, 1),
            // Node 1 never flips: in-flight switch, must be excluded.
        ];
        let recs = SwitchRecord::from_events(0, &events);
        assert_eq!(
            recs,
            vec![SwitchRecord {
                from: 0,
                to: 1,
                started_at: SimTime::from_micros(100),
                completed_at: SimTime::from_micros(150),
            }]
        );
        assert_eq!(recs[0].duration(), SimTime::from_micros(50));
        assert!(SwitchRecord::from_events(1, &events).is_empty());
    }

    #[test]
    fn handle_shares_state() {
        let h = SwitchHandle::new();
        let h2 = h.clone();
        h.update(|s| s.initiated += 1);
        assert_eq!(h2.snapshot().initiated, 1);
        assert_eq!(h2.switches_completed(), 0);
    }
}
