//! The switching protocol (SP) from *"Protocol Switching: Exploiting
//! Meta-Properties"* — run-time hot-swap between group communication
//! protocols.
//!
//! The paper's §2 in one paragraph: the SP is "yet another protocol layered
//! over the two protocols of interest"; the application only ever talks to
//! the SP. In normal mode traffic flows through the current protocol. To
//! switch, members agree (via PREPARE/OK/SWITCH messages, or a ring token
//! passing three times) on how many messages each member sent over the old
//! protocol; each member keeps delivering old-protocol messages until it
//! has all of them, buffering anything the new protocol delivers early,
//! then flips. Sends are never blocked. The guarantee: **every process
//! delivers all messages of the old protocol before any message of the
//! new protocol**.
//!
//! What survives such a switch is the subject of the paper's meta-property
//! theory, implemented in `ps-trace`: properties that are Safe,
//! Asynchronous, Delayable, Send Enabled, Memoryless and Composable (Total
//! Order, Integrity, Confidentiality, …) are preserved; No Replay, Amoeba,
//! Prioritized Delivery and Virtual Synchrony are not — and this crate's
//! tests demonstrate both sides on live protocol stacks.
//!
//! * [`SwitchLayer`] — the SP as a composite [`ps_stack::Layer`] embedding
//!   two complete protocol stacks ([`SwitchVariant::Broadcast`] and
//!   [`SwitchVariant::TokenRing`]).
//! * [`Oracle`]s — scripted, threshold and hysteresis policies (§7).
//! * [`hybrid_total_order`] — the paper's sequencer/token hybrid.
//!
//! # Examples
//!
//! A five-member group switching from sequencer to token total order at
//! t = 50 ms, under load, preserving total order end to end:
//!
//! ```
//! use ps_core::{hybrid_total_order, ManualOracle, NeverOracle, Oracle, SwitchConfig};
//! use ps_simnet::{PointToPoint, SimTime};
//! use ps_stack::GroupSimBuilder;
//! use ps_trace::props::{Property, TotalOrder};
//! use ps_trace::ProcessId;
//!
//! let mut builder = GroupSimBuilder::new(5)
//!     .seed(42)
//!     .medium(Box::new(PointToPoint::new(SimTime::from_micros(300))))
//!     .stack_factory(|p, _, ids| {
//!         let oracle: Box<dyn Oracle> = if p == ProcessId(0) {
//!             Box::new(ManualOracle::new(vec![(SimTime::from_millis(50), 1)]))
//!         } else {
//!             Box::new(NeverOracle)
//!         };
//!         hybrid_total_order(ids, SwitchConfig::default(), ProcessId(0), oracle).0
//!     });
//! for i in 0..30u64 {
//!     builder = builder.send_at(
//!         SimTime::from_millis(2 + 3 * i),
//!         ProcessId((i % 5) as u16),
//!         format!("m{i}"),
//!     );
//! }
//! let mut sim = builder.build();
//! sim.run_until(SimTime::from_secs(2));
//! assert!(TotalOrder.holds(&sim.app_trace()));
//! ```

#![deny(missing_docs)]

mod control;
mod hybrid;
mod oracle;
mod stats;
mod switch;

pub use control::{Control, CountVector, RingToken, TokenMode};
pub use hybrid::{hybrid_seq_token_ft, hybrid_total_order, hybrid_total_order_ft};
pub use oracle::{LoadOracle, ManualOracle, NeverOracle, Oracle, SwitchObs, ThresholdOracle};
pub use stats::{SwitchHandle, SwitchRecord, SwitchStats};
pub use switch::{SwitchConfig, SwitchLayer, SwitchVariant};
