//! Convenience constructors for the hybrid protocols the paper discusses.

use crate::oracle::Oracle;
use crate::stats::SwitchHandle;
use crate::switch::{SwitchConfig, SwitchLayer};
use ps_protocols::{SeqOrderLayer, TokenOrderLayer};
use ps_simnet::SimTime;
use ps_stack::{IdGen, Stack};
use ps_trace::ProcessId;

/// Builds the §7 hybrid total-order stack for one process: a switch
/// between sequencer-based (protocol 0) and token-based (protocol 1) total
/// order.
///
/// "Clearly, a hybrid protocol formed by switching at the cross-over point
/// would achieve the best of both worlds."
///
/// # Examples
///
/// ```
/// use ps_core::{hybrid_total_order, NeverOracle, SwitchConfig};
/// use ps_stack::IdGen;
/// use ps_trace::ProcessId;
///
/// let mut ids = IdGen::new();
/// let (stack, handle) = hybrid_total_order(
///     &mut ids,
///     SwitchConfig::default(),
///     ProcessId(0),
///     Box::new(NeverOracle),
/// );
/// assert_eq!(stack.layer_names(), vec!["switch"]);
/// assert_eq!(handle.current(), 0);
/// ```
pub fn hybrid_total_order(
    ids: &mut IdGen,
    cfg: SwitchConfig,
    sequencer: ProcessId,
    oracle: Box<dyn Oracle>,
) -> (Stack, SwitchHandle) {
    let seq = Stack::with_ids(vec![Box::new(SeqOrderLayer::new(sequencer))], ids);
    let token = Stack::with_ids(
        vec![Box::new(TokenOrderLayer::with_idle_hold(SimTime::from_millis(1)))],
        ids,
    );
    let (layer, handle) = SwitchLayer::new(cfg, seq, token, oracle);
    (Stack::with_ids(vec![Box::new(layer)], ids), handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NeverOracle;

    #[test]
    fn builds_one_switch_layer() {
        let mut ids = IdGen::new();
        let (stack, handle) = hybrid_total_order(
            &mut ids,
            SwitchConfig::default(),
            ProcessId(0),
            Box::new(NeverOracle),
        );
        assert_eq!(stack.len(), 1);
        assert_eq!(handle.switches_completed(), 0);
    }
}
