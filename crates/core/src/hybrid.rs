//! Convenience constructors for the hybrid protocols the paper discusses.

use crate::oracle::Oracle;
use crate::stats::SwitchHandle;
use crate::switch::{SwitchConfig, SwitchLayer};
use ps_protocols::{FifoLayer, ReliableLayer, SeqOrderLayer, TokenOrderLayer};
use ps_simnet::SimTime;
use ps_stack::{IdGen, Stack};
use ps_trace::ProcessId;

/// Builds the §7 hybrid total-order stack for one process: a switch
/// between sequencer-based (protocol 0) and token-based (protocol 1) total
/// order.
///
/// "Clearly, a hybrid protocol formed by switching at the cross-over point
/// would achieve the best of both worlds."
///
/// # Examples
///
/// ```
/// use ps_core::{hybrid_total_order, NeverOracle, SwitchConfig};
/// use ps_stack::IdGen;
/// use ps_trace::ProcessId;
///
/// let mut ids = IdGen::new();
/// let (stack, handle) = hybrid_total_order(
///     &mut ids,
///     SwitchConfig::default(),
///     ProcessId(0),
///     Box::new(NeverOracle),
/// );
/// assert_eq!(stack.layer_names(), vec!["switch"]);
/// assert_eq!(handle.current(), 0);
/// ```
pub fn hybrid_total_order(
    ids: &mut IdGen,
    cfg: SwitchConfig,
    sequencer: ProcessId,
    oracle: Box<dyn Oracle>,
) -> (Stack, SwitchHandle) {
    let seq = Stack::with_ids(vec![Box::new(SeqOrderLayer::new(sequencer))], ids);
    let token = Stack::with_ids(
        vec![Box::new(TokenOrderLayer::with_idle_hold(SimTime::from_millis(1)))],
        ids,
    );
    let (layer, handle) = SwitchLayer::new(cfg, seq, token, oracle);
    (Stack::with_ids(vec![Box::new(layer)], ids), handle)
}

/// Builds a **fault-tolerant** hybrid total-order stack: two
/// sequencer-based total-order protocols (protocol 0 sequenced by `seq_a`,
/// protocol 1 by `seq_b`) each over reliable exactly-once transport, with
/// the switch's control traffic on its own reliable stack.
///
/// [`ReliableLayer`] delivers *unordered* (retransmitted frames overtake
/// later ones), so a [`FifoLayer`] sits between the sequencer and the
/// transport: it restores per-sender order before the sequencer assigns
/// global order, making the composed stack FIFO *and* totally ordered
/// even under loss — the §4 layering argument in miniature.
///
/// This is the configuration the chaos harness drives: retransmission
/// below, and the switch's own phase timeout / control retransmission /
/// token regeneration above, keep both the data plane and the switching
/// protocol live across crashes, recoveries, frame loss, and (bounded)
/// partitions. Switching between two instances of the "same" protocol
/// under different sequencers is the paper's on-line reconfiguration
/// use case.
pub fn hybrid_total_order_ft(
    ids: &mut IdGen,
    cfg: SwitchConfig,
    seq_a: ProcessId,
    seq_b: ProcessId,
    oracle: Box<dyn Oracle>,
) -> (Stack, SwitchHandle) {
    let a = Stack::with_ids(
        vec![
            Box::new(SeqOrderLayer::new(seq_a)),
            Box::new(FifoLayer::new()),
            Box::new(ReliableLayer::new()),
        ],
        ids,
    );
    let b = Stack::with_ids(
        vec![
            Box::new(SeqOrderLayer::new(seq_b)),
            Box::new(FifoLayer::new()),
            Box::new(ReliableLayer::new()),
        ],
        ids,
    );
    let control = Stack::with_ids(vec![Box::new(ReliableLayer::new())], ids);
    let (layer, handle) = SwitchLayer::new(cfg, a, b, oracle);
    let layer = layer.with_control_stack(control);
    (Stack::with_ids(vec![Box::new(layer)], ids), handle)
}

/// Builds the **fault-tolerant sequencer↔token** hybrid: protocol 0 is
/// sequencer-based total order (sequenced by `sequencer`) over FIFO over
/// reliable transport; protocol 1 is token-based total order (with
/// `idle_hold` as its idle rotation period) directly over reliable
/// transport, with the switch's control traffic on its own reliable stack.
///
/// This is [`hybrid_total_order`]'s protocol pair with
/// [`hybrid_total_order_ft`]'s transports: the §7 crossover hybrid, but
/// able to ride out frame loss and crash/recovery. The token protocol
/// needs no FIFO restorer — it delivers from a global-sequence reorder
/// buffer, so retransmitted frames overtaking later ones cannot reorder
/// its output.
pub fn hybrid_seq_token_ft(
    ids: &mut IdGen,
    cfg: SwitchConfig,
    sequencer: ProcessId,
    idle_hold: SimTime,
    oracle: Box<dyn Oracle>,
) -> (Stack, SwitchHandle) {
    let seq = Stack::with_ids(
        vec![
            Box::new(SeqOrderLayer::new(sequencer)),
            Box::new(FifoLayer::new()),
            Box::new(ReliableLayer::new()),
        ],
        ids,
    );
    let token = Stack::with_ids(
        vec![Box::new(TokenOrderLayer::with_idle_hold(idle_hold)), Box::new(ReliableLayer::new())],
        ids,
    );
    let control = Stack::with_ids(vec![Box::new(ReliableLayer::new())], ids);
    let (layer, handle) = SwitchLayer::new(cfg, seq, token, oracle);
    let layer = layer.with_control_stack(control);
    (Stack::with_ids(vec![Box::new(layer)], ids), handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NeverOracle;

    #[test]
    fn builds_one_switch_layer() {
        let mut ids = IdGen::new();
        let (stack, handle) = hybrid_total_order(
            &mut ids,
            SwitchConfig::default(),
            ProcessId(0),
            Box::new(NeverOracle),
        );
        assert_eq!(stack.len(), 1);
        assert_eq!(handle.switches_completed(), 0);
    }

    #[test]
    fn seq_token_ft_builds_one_switch_layer() {
        let mut ids = IdGen::new();
        let (stack, handle) = hybrid_seq_token_ft(
            &mut ids,
            SwitchConfig::default(),
            ProcessId(0),
            SimTime::from_millis(5),
            Box::new(NeverOracle),
        );
        assert_eq!(stack.layer_names(), vec!["switch"]);
        assert_eq!(handle.current(), 0);
    }
}
