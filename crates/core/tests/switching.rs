//! End-to-end tests of the switching protocol over live stacks.

use ps_bytes::Bytes;
use ps_core::{
    hybrid_total_order, hybrid_total_order_ft, ManualOracle, NeverOracle, Oracle, SwitchConfig,
    SwitchHandle, SwitchLayer, SwitchVariant, ThresholdOracle,
};
use ps_protocols::{FifoLayer, NoReplayLayer, SeqOrderLayer};
use ps_simnet::{NodeId, PartitionSchedule, PointToPoint, SimTime};
use ps_stack::{GroupSim, GroupSimBuilder, Stack};
use ps_trace::props::{NoReplay, Property, Reliability, TotalOrder};
use ps_trace::ProcessId;
use std::cell::RefCell;
use std::rc::Rc;

type Handles = Rc<RefCell<Vec<SwitchHandle>>>;

fn p2p(us: u64) -> Box<dyn ps_simnet::Medium> {
    Box::new(PointToPoint::new(SimTime::from_micros(us)))
}

fn decider_oracle(p: ProcessId, plan: Vec<(SimTime, usize)>) -> Box<dyn Oracle> {
    if p == ProcessId(0) {
        Box::new(ManualOracle::new(plan))
    } else {
        Box::new(NeverOracle)
    }
}

/// Hybrid total-order group with a scripted switch plan; returns the sim
/// and the per-process switch handles.
fn hybrid_sim(
    n: u16,
    seed: u64,
    variant: SwitchVariant,
    plan: Vec<(SimTime, usize)>,
    msgs: usize,
    gap: SimTime,
) -> (GroupSim, Handles) {
    let handles: Handles = Rc::new(RefCell::new(Vec::new()));
    let h2 = handles.clone();
    let mut b =
        GroupSimBuilder::new(n).seed(seed).medium(p2p(300)).stack_factory(move |p, _, ids| {
            let cfg = SwitchConfig {
                variant,
                observe_interval: SimTime::from_millis(10),
                ..SwitchConfig::default()
            };
            let (stack, handle) =
                hybrid_total_order(ids, cfg, ProcessId(0), decider_oracle(p, plan.clone()));
            h2.borrow_mut().push(handle);
            stack
        });
    for i in 0..msgs {
        b = b.send_at(
            SimTime::from_millis(2) + gap.mul(i as u64),
            ProcessId((i % n as usize) as u16),
            format!("m{i}"),
        );
    }
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(5));
    (sim, handles)
}

#[test]
fn token_ring_switch_preserves_total_order_and_reliability() {
    let plan = vec![(SimTime::from_millis(60), 1)];
    let (sim, handles) = hybrid_sim(
        5,
        1,
        SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(1) },
        plan,
        40,
        SimTime::from_millis(3),
    );
    let tr = sim.app_trace();
    assert!(TotalOrder.holds(&tr), "total order must survive the switch");
    assert!(Reliability::new(sim.group().to_vec()).holds(&tr));
    assert!(NoReplay.holds(&tr), "distinct bodies: exactly-once must hold");
    // Every process completed exactly one switch, to protocol 1.
    for h in handles.borrow().iter() {
        assert_eq!(h.switches_completed(), 1, "{h:?}");
        assert_eq!(h.current(), 1);
    }
}

#[test]
fn broadcast_switch_preserves_total_order_and_reliability() {
    let plan = vec![(SimTime::from_millis(60), 1)];
    let (sim, handles) =
        hybrid_sim(5, 2, SwitchVariant::Broadcast, plan, 40, SimTime::from_millis(3));
    let tr = sim.app_trace();
    assert!(TotalOrder.holds(&tr));
    assert!(Reliability::new(sim.group().to_vec()).holds(&tr));
    for h in handles.borrow().iter() {
        assert_eq!(h.switches_completed(), 1);
        assert_eq!(h.current(), 1);
    }
}

#[test]
fn switch_back_and_forth_many_times() {
    let plan = vec![
        (SimTime::from_millis(50), 1),
        (SimTime::from_millis(100), 0),
        (SimTime::from_millis(150), 1),
        (SimTime::from_millis(200), 0),
    ];
    let (sim, handles) = hybrid_sim(
        4,
        3,
        SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(1) },
        plan,
        80,
        SimTime::from_millis(3),
    );
    let tr = sim.app_trace();
    assert!(TotalOrder.holds(&tr), "total order must survive 4 switches");
    assert!(Reliability::new(sim.group().to_vec()).holds(&tr));
    for h in handles.borrow().iter() {
        assert_eq!(h.switches_completed(), 4);
        assert_eq!(h.current(), 0);
    }
}

#[test]
fn switch_under_bursty_concurrent_load() {
    // Every process sends a burst exactly while the switch is running.
    let plan = vec![(SimTime::from_millis(30), 1)];
    let (sim, handles) = hybrid_sim(
        6,
        4,
        SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(1) },
        plan,
        60,
        SimTime::from_micros(800),
    );
    let tr = sim.app_trace();
    assert!(TotalOrder.holds(&tr));
    assert!(Reliability::new(sim.group().to_vec()).holds(&tr));
    assert_eq!(tr.iter().filter(|e| e.is_deliver()).count(), 60 * 6);
    assert!(handles.borrow().iter().all(|h| h.switches_completed() == 1));
}

#[test]
fn old_protocol_messages_all_precede_new_protocol_messages() {
    // The SP's core guarantee, checked directly: messages sent before the
    // switch completes on the old protocol are delivered at every process
    // before any message that the sender submitted after it entered
    // switching mode. We approximate "protocol of a message" by send time:
    // everything sent before the PREPARE instant went through protocol 0.
    let plan = vec![(SimTime::from_millis(60), 1)];
    let (sim, handles) = hybrid_sim(
        4,
        5,
        SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(1) },
        plan,
        40,
        SimTime::from_millis(3),
    );
    let handles = handles.borrow();
    let started = handles[0].snapshot().records[0].started_at;
    let completed = handles.iter().map(|h| h.snapshot().records[0].completed_at).max().unwrap();
    let sends = sim.send_times();
    let tr = sim.app_trace();
    // Old messages: sent before the initiator started switching.
    // New messages: sent after every member flipped.
    for p in sim.group() {
        let mut seen_new = false;
        for m in tr.delivered_by(*p) {
            let sent_at = sends[&m.id];
            if sent_at > completed {
                seen_new = true;
            } else if sent_at < started {
                assert!(
                    !seen_new,
                    "{p} delivered old-protocol message {} after a new-protocol one",
                    m.id
                );
            }
        }
    }
}

#[test]
fn no_replay_is_not_preserved_by_switching() {
    // §6.2, live: both protocols deduplicate bodies, yet the same body
    // sent once before and once after the switch reaches the app twice.
    let run = |with_switch: bool| {
        let plan = if with_switch { vec![(SimTime::from_millis(50), 1)] } else { vec![] };
        let b = GroupSimBuilder::new(3)
            .seed(6)
            .medium(p2p(300))
            .stack_factory(move |p, _, ids| {
                let a = Stack::with_ids(
                    vec![Box::new(NoReplayLayer::new()), Box::new(FifoLayer::new())],
                    ids,
                );
                let bstack = Stack::with_ids(
                    vec![Box::new(NoReplayLayer::new()), Box::new(FifoLayer::new())],
                    ids,
                );
                let cfg = SwitchConfig {
                    variant: SwitchVariant::Broadcast,
                    observe_interval: SimTime::from_millis(10),
                    ..SwitchConfig::default()
                };
                let (layer, _handle) =
                    SwitchLayer::new(cfg, a, bstack, decider_oracle(p, plan.clone()));
                Stack::with_ids(vec![Box::new(layer)], ids)
            })
            // Same body, before and after the switch instant.
            .send_at(SimTime::from_millis(10), ProcessId(1), Bytes::from_static(b"DUP"))
            .send_at(SimTime::from_millis(120), ProcessId(2), Bytes::from_static(b"DUP"));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(2));
        sim.app_trace()
    };
    let without = run(false);
    assert!(NoReplay.holds(&without), "single protocol suppresses the replay: {without}");
    let with = run(true);
    assert!(!NoReplay.holds(&with), "switching defeats per-protocol replay suppression: {with}");
}

#[test]
fn threshold_oracle_adapts_to_load() {
    // Start with 1 active sender (sequencer wins), ramp to 6 senders
    // (token wins): the hysteresis oracle must switch exactly once.
    let handles: Handles = Rc::new(RefCell::new(Vec::new()));
    let h2 = handles.clone();
    let mut b = GroupSimBuilder::new(8).seed(7).medium(p2p(300)).stack_factory(move |p, _, ids| {
        let oracle: Box<dyn Oracle> = if p == ProcessId(0) {
            Box::new(ThresholdOracle::new(4, 1))
        } else {
            Box::new(NeverOracle)
        };
        let cfg = SwitchConfig {
            variant: SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(1) },
            observe_interval: SimTime::from_millis(50),
            observe_window: SimTime::from_millis(300),
            ..SwitchConfig::default()
        };
        let (stack, handle) = hybrid_total_order(ids, cfg, ProcessId(0), oracle);
        h2.borrow_mut().push(handle);
        stack
    });
    // Phase 1 (0–300 ms): only p1 sends.
    for i in 0..15u64 {
        b = b.send_at(SimTime::from_millis(5 + 20 * i), ProcessId(1), b"lo");
    }
    // Phase 2 (400–900 ms): six senders at 50 msg/s each.
    for i in 0..150u64 {
        b = b.send_at(SimTime::from_millis(400 + 3 * i), ProcessId((1 + i % 6) as u16), b"hi");
    }
    let mut sim = b.build();
    // Stop while the high-load phase is still active (the oracle would —
    // correctly — switch back down once the workload drains).
    sim.run_until(SimTime::from_millis(1_000));
    let tr = sim.app_trace();
    assert!(TotalOrder.holds(&tr));
    let h = &handles.borrow()[0];
    assert_eq!(h.current(), 1, "high load must move to the token protocol");
    assert_eq!(h.switches_completed(), 1, "{:?}", h.snapshot().records);
    // Run past the end of the load: the oracle adapts back down.
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(handles.borrow()[0].current(), 0, "idle load returns to the sequencer");
}

#[test]
fn zero_hysteresis_oscillates_hysteresis_does_not() {
    // §7: "If switching too aggressively, the resulting protocol starts
    // oscillating." Load hovers right at the threshold.
    let run = |hysteresis: usize| {
        let handles: Handles = Rc::new(RefCell::new(Vec::new()));
        let h2 = handles.clone();
        let mut b =
            GroupSimBuilder::new(8).seed(8).medium(p2p(300)).stack_factory(move |p, _, ids| {
                let oracle: Box<dyn Oracle> = if p == ProcessId(0) {
                    Box::new(ThresholdOracle::new(4, hysteresis))
                } else {
                    Box::new(NeverOracle)
                };
                let cfg = SwitchConfig {
                    variant: SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(1) },
                    observe_interval: SimTime::from_millis(40),
                    observe_window: SimTime::from_millis(200),
                    ..SwitchConfig::default()
                };
                let (stack, handle) = hybrid_total_order(ids, cfg, ProcessId(0), oracle);
                h2.borrow_mut().push(handle);
                stack
            });
        // Alternate 200 ms phases of 3 and 5 active senders around the
        // threshold of 4.
        let mut t = 5u64;
        for phase in 0..10u64 {
            let senders = if phase % 2 == 0 { 3 } else { 5 };
            for i in 0..(senders as u64 * 10) {
                b = b.send_at(
                    SimTime::from_millis(t + 2 * i),
                    ProcessId((1 + i % senders as u64) as u16),
                    b"x",
                );
            }
            t += 200;
        }
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(3));
        let n = handles.borrow()[0].switches_completed();
        n
    };
    let aggressive = run(0);
    let damped = run(2);
    assert!(
        aggressive >= damped + 2,
        "aggressive ({aggressive}) must flap more than damped ({damped})"
    );
    assert!(aggressive >= 3, "aggressive policy should oscillate, got {aggressive}");
}

#[test]
fn switch_between_identical_protocols_is_transparent() {
    // "On-line upgrading": switch between two instances of the same
    // protocol — the application must see nothing but a complete, ordered
    // stream.
    let plan = vec![(SimTime::from_millis(50), 1), (SimTime::from_millis(120), 0)];
    let mut b = GroupSimBuilder::new(4).seed(9).medium(p2p(300)).stack_factory(move |p, _, ids| {
        let a = Stack::with_ids(vec![Box::new(SeqOrderLayer::new(ProcessId(0)))], ids);
        let b2 = Stack::with_ids(vec![Box::new(SeqOrderLayer::new(ProcessId(0)))], ids);
        let cfg = SwitchConfig {
            variant: SwitchVariant::Broadcast,
            observe_interval: SimTime::from_millis(10),
            ..SwitchConfig::default()
        };
        let (layer, _) = SwitchLayer::new(cfg, a, b2, decider_oracle(p, plan.clone()));
        Stack::with_ids(vec![Box::new(layer)], ids)
    });
    for i in 0..50u64 {
        b = b.send_at(SimTime::from_millis(2 + 4 * i), ProcessId((i % 4) as u16), format!("u{i}"));
    }
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(2));
    let tr = sim.app_trace();
    assert!(TotalOrder.holds(&tr));
    assert!(Reliability::new(sim.group().to_vec()).holds(&tr));
    assert_eq!(tr.iter().filter(|e| e.is_deliver()).count(), 50 * 4);
}

#[test]
fn token_order_under_switch_with_single_member_group() {
    // Degenerate ring of one: everything is a self-loop; the switch still
    // completes.
    let plan = vec![(SimTime::from_millis(20), 1)];
    let handles: Handles = Rc::new(RefCell::new(Vec::new()));
    let h2 = handles.clone();
    let mut b =
        GroupSimBuilder::new(1).seed(10).medium(p2p(100)).stack_factory(move |p, _, ids| {
            let cfg = SwitchConfig {
                variant: SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(1) },
                observe_interval: SimTime::from_millis(5),
                ..SwitchConfig::default()
            };
            let (stack, handle) =
                hybrid_total_order(ids, cfg, ProcessId(0), decider_oracle(p, plan.clone()));
            h2.borrow_mut().push(handle);
            stack
        });
    for i in 0..5u64 {
        b = b.send_at(SimTime::from_millis(1 + 10 * i), ProcessId(0), b"solo");
    }
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(handles.borrow()[0].switches_completed(), 1);
    assert_eq!(sim.app_trace().iter().filter(|e| e.is_deliver()).count(), 5);
}

#[test]
fn switch_durations_are_recorded_and_ordered() {
    let plan = vec![(SimTime::from_millis(60), 1)];
    let (_, handles) = hybrid_sim(
        5,
        11,
        SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(1) },
        plan,
        30,
        SimTime::from_millis(3),
    );
    for h in handles.borrow().iter() {
        let snap = h.snapshot();
        let rec = &snap.records[0];
        assert!(rec.completed_at >= rec.started_at);
        assert_eq!(rec.from, 0);
        assert_eq!(rec.to, 1);
        // A switch takes a few token rotations: strictly positive duration
        // at the initiator, bounded well under a second here.
        assert!(rec.duration() < SimTime::from_millis(500), "{rec:?}");
    }
}

#[test]
fn concurrent_initiators_broadcast_variant_converges() {
    // Two deciders fire the broadcast-variant switch at the same instant.
    // The era guard makes the duplicate PREPARE idempotent: every member
    // completes exactly one switch and ends on the same protocol.
    let handles: Handles = Rc::new(RefCell::new(Vec::new()));
    let h2 = handles.clone();
    let mut b =
        GroupSimBuilder::new(4).seed(21).medium(p2p(300)).stack_factory(move |p, _, ids| {
            let oracle: Box<dyn Oracle> = if p == ProcessId(0) || p == ProcessId(1) {
                Box::new(ManualOracle::new(vec![(SimTime::from_millis(40), 1)]))
            } else {
                Box::new(NeverOracle)
            };
            let cfg = SwitchConfig {
                variant: SwitchVariant::Broadcast,
                observe_interval: SimTime::from_millis(10),
                ..SwitchConfig::default()
            };
            let (stack, handle) = hybrid_total_order(ids, cfg, ProcessId(0), oracle);
            h2.borrow_mut().push(handle);
            stack
        });
    for i in 0..24u64 {
        b = b.send_at(SimTime::from_millis(2 + 4 * i), ProcessId((i % 4) as u16), format!("cc{i}"));
    }
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(3));
    let tr = sim.app_trace();
    assert!(TotalOrder.holds(&tr), "{tr}");
    assert!(Reliability::new(sim.group().to_vec()).holds(&tr));
    for h in handles.borrow().iter() {
        assert_eq!(h.switches_completed(), 1, "{h:?}");
        assert_eq!(h.current(), 1);
    }
}

/// Switch config for the fault-injection tests: fast fault handling so
/// recovery fits comfortably inside a short run, but a phase timeout long
/// enough that a crash the switch can survive does not abort it.
fn ft_cfg(variant: SwitchVariant, phase_timeout: SimTime) -> SwitchConfig {
    SwitchConfig {
        variant,
        observe_interval: SimTime::from_millis(10),
        phase_timeout,
        retransmit_base: SimTime::from_millis(40),
        retransmit_max: SimTime::from_millis(160),
        token_regen: SimTime::from_millis(100),
        ..SwitchConfig::default()
    }
}

#[test]
fn member_crash_during_switch_recovers_and_switch_completes() {
    // p3 fail-stops right after the switch begins and comes back 87 ms
    // later. The reliable control stack keeps retransmitting the ring
    // token to the dead member, so the switch stalls rather than wedges,
    // and completes shortly after recovery.
    let plan = vec![(SimTime::from_millis(60), 1)];
    let handles: Handles = Rc::new(RefCell::new(Vec::new()));
    let h2 = handles.clone();
    let mut b =
        GroupSimBuilder::new(4).seed(31).medium(p2p(300)).stack_factory(move |p, _, ids| {
            let cfg = ft_cfg(
                SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(1) },
                SimTime::from_secs(2),
            );
            let (stack, handle) = hybrid_total_order_ft(
                ids,
                cfg,
                ProcessId(0),
                ProcessId(1),
                decider_oracle(p, plan.clone()),
            );
            h2.borrow_mut().push(handle);
            stack
        });
    // Load from the three survivors throughout; the victim sends only
    // after it has recovered.
    for i in 0..30u64 {
        b = b.send_at(SimTime::from_millis(2 + 5 * i), ProcessId((i % 3) as u16), format!("f{i}"));
    }
    for i in 0..4u64 {
        b = b.send_at(SimTime::from_millis(220 + 10 * i), ProcessId(3), format!("r{i}"));
    }
    let mut sim = b.build();
    sim.schedule_crash(SimTime::from_millis(63), ProcessId(3));
    sim.schedule_recover(SimTime::from_millis(150), ProcessId(3));
    sim.run_until(SimTime::from_secs(5));
    let tr = sim.app_trace();
    assert!(TotalOrder.holds(&tr), "total order must survive crash + recovery");
    assert!(Reliability::new(sim.group().to_vec()).holds(&tr), "victim must catch up on recovery");
    for h in handles.borrow().iter() {
        assert_eq!(h.switches_completed(), 1, "{h:?}");
        assert_eq!(h.current(), 1, "{h:?}");
        assert_eq!(h.aborted(), 0, "a survivable crash must not abort: {h:?}");
        assert!(!h.switching(), "nobody may stay wedged mid-switch: {h:?}");
    }
}

#[test]
fn initiator_and_sequencer_crash_during_switch_recovers_and_completes() {
    // The worst victim: p0 is the switch manager AND the old protocol's
    // sequencer, and it dies with the PREPARE barely out. On restart the
    // manager resends its latest control broadcast, members re-OK
    // idempotently, and the switch completes.
    let plan = vec![(SimTime::from_millis(60), 1)];
    let handles: Handles = Rc::new(RefCell::new(Vec::new()));
    let h2 = handles.clone();
    let mut b =
        GroupSimBuilder::new(4).seed(32).medium(p2p(300)).stack_factory(move |p, _, ids| {
            let cfg = ft_cfg(SwitchVariant::Broadcast, SimTime::from_secs(2));
            let (stack, handle) = hybrid_total_order_ft(
                ids,
                cfg,
                ProcessId(0),
                ProcessId(1),
                decider_oracle(p, plan.clone()),
            );
            h2.borrow_mut().push(handle);
            stack
        });
    for i in 0..30u64 {
        b = b.send_at(
            SimTime::from_millis(2 + 5 * i),
            ProcessId((1 + i % 3) as u16),
            format!("s{i}"),
        );
    }
    let mut sim = b.build();
    sim.schedule_crash(SimTime::from_micros(60_500), ProcessId(0));
    sim.schedule_recover(SimTime::from_millis(150), ProcessId(0));
    sim.run_until(SimTime::from_secs(5));
    let tr = sim.app_trace();
    assert!(TotalOrder.holds(&tr));
    assert!(Reliability::new(sim.group().to_vec()).holds(&tr));
    for h in handles.borrow().iter() {
        assert_eq!(h.switches_completed(), 1, "{h:?}");
        assert_eq!(h.current(), 1, "{h:?}");
        assert_eq!(h.aborted(), 0, "{h:?}");
        assert!(!h.switching(), "{h:?}");
    }
}

#[test]
fn partition_spanning_switch_aborts_cleanly_and_self_heals() {
    // A partition splits the group before the switch attempt; the far
    // side never sees the PREPARE, so the near side's phase timeout
    // aborts the attempt and reverts to the old protocol. After the heal
    // the reliable control stack's straggler PREPARE briefly lures the
    // far side into the dead attempt — their own phase timeout returns
    // them to normal mode too: the abort path is self-stabilizing.
    let plan = vec![(SimTime::from_millis(200), 1)];
    let medium = Box::new(
        PartitionSchedule::new(p2p(300))
            .partition_at(
                SimTime::from_millis(150),
                vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
            )
            .heal_at(SimTime::from_millis(800)),
    );
    let handles: Handles = Rc::new(RefCell::new(Vec::new()));
    let h2 = handles.clone();
    let mut b = GroupSimBuilder::new(4).seed(33).medium(medium).stack_factory(move |p, _, ids| {
        let cfg = ft_cfg(SwitchVariant::Broadcast, SimTime::from_millis(400));
        let (stack, handle) = hybrid_total_order_ft(
            ids,
            cfg,
            ProcessId(0),
            ProcessId(1),
            decider_oracle(p, plan.clone()),
        );
        h2.borrow_mut().push(handle);
        stack
    });
    // The workload is fully quiescent before the partition forms, so the
    // abort's buffer absorption has nothing to reorder.
    for i in 0..12u64 {
        b = b.send_at(SimTime::from_millis(2 + 5 * i), ProcessId((i % 4) as u16), format!("q{i}"));
    }
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(3));
    let tr = sim.app_trace();
    assert!(TotalOrder.holds(&tr));
    assert!(Reliability::new(sim.group().to_vec()).holds(&tr));
    for h in handles.borrow().iter() {
        assert_eq!(h.switches_completed(), 0, "the spanning switch must not complete: {h:?}");
        assert_eq!(h.current(), 0, "everyone reverts to the old protocol: {h:?}");
        assert!(!h.switching(), "nobody may stay wedged mid-switch: {h:?}");
        assert_eq!(h.aborted(), 1, "each member abandons the attempt exactly once: {h:?}");
    }
}

#[test]
fn concurrent_initiators_token_variant_serialize() {
    // In the token variant only a NORMAL-token holder can initiate, so two
    // simultaneous wishes serialize by construction. Both deciders want
    // protocol 1; one seizes the token, the other's wish becomes a no-op.
    let handles: Handles = Rc::new(RefCell::new(Vec::new()));
    let h2 = handles.clone();
    let mut b =
        GroupSimBuilder::new(4).seed(22).medium(p2p(300)).stack_factory(move |p, _, ids| {
            let oracle: Box<dyn Oracle> = if p.0 <= 1 {
                Box::new(ManualOracle::new(vec![(SimTime::from_millis(40), 1)]))
            } else {
                Box::new(NeverOracle)
            };
            let cfg = SwitchConfig {
                variant: SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(1) },
                observe_interval: SimTime::from_millis(10),
                ..SwitchConfig::default()
            };
            let (stack, handle) = hybrid_total_order(ids, cfg, ProcessId(0), oracle);
            h2.borrow_mut().push(handle);
            stack
        });
    for i in 0..24u64 {
        b = b.send_at(SimTime::from_millis(2 + 4 * i), ProcessId((i % 4) as u16), format!("ct{i}"));
    }
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(3));
    assert!(TotalOrder.holds(&sim.app_trace()));
    for h in handles.borrow().iter() {
        assert_eq!(h.switches_completed(), 1, "{h:?}");
        assert_eq!(h.current(), 1);
    }
}
