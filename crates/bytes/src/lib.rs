//! Std-only byte buffers for the protocol-switching workspace.
//!
//! The workspace needs exactly two things from a byte-buffer library:
//!
//! * [`Bytes`] — an immutable, cheaply clonable, sliceable view of a byte
//!   string, passed between protocol layers as an opaque payload.
//! * [`BytesMut`] — an append-only build buffer that freezes into a
//!   [`Bytes`] without copying.
//!
//! Both are implemented here on top of `Arc<[u8]>` (plus a zero-alloc
//! `&'static [u8]` representation) so the workspace builds with **zero
//! external dependencies**. The API is the subset of the `bytes` crate the
//! repo actually uses; it is not a drop-in replacement for the full crate.
//!
//! # Examples
//!
//! ```
//! use ps_bytes::Bytes;
//!
//! let b = Bytes::from(vec![1u8, 2, 3, 4]);
//! let tail = b.slice(2..);
//! assert_eq!(&tail[..], &[3, 4]);
//! // Clones share the underlying allocation.
//! let c = b.clone();
//! assert_eq!(b, c);
//! ```

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply clonable byte string.
///
/// Cloning is O(1): the two clones share one allocation (or, for
/// [`Bytes::from_static`], no allocation at all). [`Bytes::slice`] is also
/// O(1) and shares storage with its parent.
///
/// Equality, ordering and hashing are all by content, so a sliced view
/// compares equal to a freshly allocated buffer with the same bytes.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Repr {
    /// Borrowed from static memory; never allocates or counts references.
    Static(&'static [u8]),
    /// Shared heap allocation.
    Shared(Arc<[u8]>),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Bytes {
    /// Creates an empty `Bytes`. Does not allocate.
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]), start: 0, end: 0 }
    }

    /// Wraps a static byte slice without allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(bytes), start: 0, end: bytes.len() }
    }

    /// Copies `data` into a new shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    fn from_arc(arc: Arc<[u8]>) -> Self {
        let end = arc.len();
        Bytes { repr: Repr::Shared(arc), start: 0, end }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Borrows the viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.repr.as_slice()[self.start..self.end]
    }

    /// Returns a sub-view sharing storage with `self` (O(1), no copy).
    ///
    /// Accepts any range kind: `b.slice(1..3)`, `b.slice(..2)`,
    /// `b.slice(4..)`, `b.slice(..)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, matching slice
    /// indexing semantics.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi, "slice range inverted: {lo} > {hi}");
        assert!(hi <= len, "slice range {hi} out of bounds for length {len}");
        Bytes { repr: self.repr.clone(), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Content hash, consistent with `Borrow<[u8]>`.
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            // ASCII-escape, like the `bytes` crate: printable chars pass
            // through, the rest render as \xNN.
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = IntoIter;
    fn into_iter(self) -> IntoIter {
        IntoIter { bytes: self, pos: 0 }
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Owning byte iterator returned by [`Bytes::into_iter`].
#[derive(Debug)]
pub struct IntoIter {
    bytes: Bytes,
    pos: usize,
}

impl Iterator for IntoIter {
    type Item = u8;
    fn next(&mut self) -> Option<u8> {
        let b = self.bytes.as_slice().get(self.pos).copied();
        self.pos += 1;
        b
    }
}

/// Append-only byte buffer that freezes into a shared [`Bytes`].
///
/// All integer appends are explicitly little-endian (`put_u16_le` etc.),
/// matching the wire format used throughout the workspace.
///
/// # Examples
///
/// ```
/// use ps_bytes::BytesMut;
///
/// let mut buf = BytesMut::with_capacity(16);
/// buf.put_u8(1);
/// buf.put_u32_le(0xdead_beef);
/// buf.put_slice(b"tail");
/// let frozen = buf.freeze();
/// assert_eq!(frozen.len(), 9);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes of pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f64`.
    pub fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a byte slice.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Converts the buffer into an immutable [`Bytes`] (single move of the
    /// backing storage into a shared allocation, no extra copy of content).
    pub fn freeze(self) -> Bytes {
        if self.buf.is_empty() {
            Bytes::new()
        } else {
            Bytes::from(self.buf)
        }
    }

    /// Consumes the buffer and returns the raw `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn static_and_owned_compare_equal() {
        let s = Bytes::from_static(b"abc");
        let o = Bytes::from(vec![b'a', b'b', b'c']);
        assert_eq!(s, o);
        assert_eq!(hash_of(&s), hash_of(&o));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        // Same backing allocation: pointer equality of the slices.
        assert!(std::ptr::eq(a.as_slice(), b.as_slice()));
    }

    #[test]
    fn slice_is_a_view() {
        let a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = a.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let mid2 = mid.slice(1..);
        assert_eq!(&mid2[..], &[3, 4]);
        assert_eq!(a.slice(..), a);
        assert!(a.slice(2..2).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from_static(b"ab").slice(..3);
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::new();
        m.put_u16_le(0x0102);
        m.put_u8(9);
        let b = m.freeze();
        assert_eq!(&b[..], &[2, 1, 9]);
    }

    #[test]
    fn empty_freeze_is_static_empty() {
        assert_eq!(BytesMut::new().freeze(), Bytes::new());
        assert!(BytesMut::new().freeze().is_empty());
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\"\n\x01");
        assert_eq!(format!("{b:?}"), "b\"a\\\"\\n\\x01\"");
    }
}
