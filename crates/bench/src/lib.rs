//! Shared fixtures and the std-only [`timing`] harness for the benches
//! that regenerate the paper's tables and figures. Each bench binary
//! corresponds to one artifact:
//!
//! * `fig2_latency` — Figure 2 sweep points (sequencer / token / hybrid).
//! * `table1_properties` — Table 1 predicate evaluation throughput.
//! * `table2_matrix` — Table 2 meta-property checking.
//! * `switch_overhead` — §7 switch cost end to end.
//! * `oracle_ablation` — §7 oscillation/hysteresis and variant ablations.
//! * `engine_micro` — substrate micro-benchmarks (event queue, codec,
//!   simulator event loop).
//!
//! Bench configurations are intentionally small — the harness repeats
//! them — while the `repro` binary runs the full-size experiments once.

pub mod timing;

use ps_core::{hybrid_total_order, ManualOracle, NeverOracle, Oracle, SwitchConfig, SwitchVariant};
use ps_simnet::{EthernetConfig, SharedBus, SimTime};
use ps_stack::{GroupSim, GroupSimBuilder, Stack};
use ps_trace::ProcessId;

/// Standard small hybrid group: `n` members on a shared bus, `msgs`
/// messages, optional scripted switch plan.
pub fn hybrid_group(n: u16, msgs: u64, plan: Vec<(SimTime, usize)>) -> GroupSim {
    let mut b = GroupSimBuilder::new(n)
        .seed(0xBE7C)
        .medium(Box::new(SharedBus::new(EthernetConfig::default())))
        .stack_factory(move |p, _, ids| {
            let oracle: Box<dyn Oracle> = if p == ProcessId(0) {
                Box::new(ManualOracle::new(plan.clone()))
            } else {
                Box::new(NeverOracle)
            };
            let cfg = SwitchConfig {
                variant: SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(2) },
                observe_interval: SimTime::from_millis(20),
                ..SwitchConfig::default()
            };
            hybrid_total_order(ids, cfg, ProcessId(0), oracle).0
        });
    for i in 0..msgs {
        b = b.send_at(
            SimTime::from_millis(2 + 2 * i),
            ProcessId((i % u64::from(n)) as u16),
            format!("b{i}"),
        );
    }
    b.build()
}

/// A bare single-protocol group for baseline comparisons.
pub fn plain_group(n: u16, msgs: u64, factory: fn() -> Box<dyn ps_stack::Layer>) -> GroupSim {
    let mut b = GroupSimBuilder::new(n)
        .seed(0xBE7C)
        .medium(Box::new(SharedBus::new(EthernetConfig::default())))
        .stack_factory(move |_, _, ids| Stack::with_ids(vec![factory()], ids));
    for i in 0..msgs {
        b = b.send_at(
            SimTime::from_millis(2 + 2 * i),
            ProcessId((i % u64::from(n)) as u16),
            format!("b{i}"),
        );
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_run() {
        let mut g = hybrid_group(3, 5, vec![(SimTime::from_millis(8), 1)]);
        g.run_until(SimTime::from_secs(1));
        assert!(g.app_trace().len() > 5);

        let mut p = plain_group(3, 5, || Box::new(ps_protocols::FifoLayer::new()));
        p.run_until(SimTime::from_secs(1));
        assert_eq!(p.app_trace().iter().filter(|e| e.is_deliver()).count(), 15);
    }
}
