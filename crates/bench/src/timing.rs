//! Std-only timing harness for the `[[bench]]` binaries.
//!
//! Each bench target is a plain `fn main()` that builds a [`Bench`],
//! registers closures under named groups, and exits. Per benchmark the
//! harness runs `warmup` untimed iterations, then times `iters`
//! iterations individually and reports min / mean / median / p99 / max.
//! Results stream to stdout as JSON lines (one object per benchmark, the
//! format the `BENCH_*.json` trajectory files are seeded from) with a
//! human-readable summary on stderr.
//!
//! Knobs, all optional:
//!
//! * `PS_BENCH_ITERS` / `PS_BENCH_WARMUP` — override the per-group
//!   defaults globally (useful for a quick smoke run: `PS_BENCH_ITERS=1`).
//! * `PS_BENCH_OUT=path` — append the JSON lines to a file as well.
//! * a positional CLI argument — substring filter on `group/id` names.
//!   Flags such as the `--bench` that `cargo bench` appends are ignored.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::Instant;

/// Harness configuration, resolved from CLI args and environment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Untimed iterations before measurement, unless a group overrides.
    pub warmup: u32,
    /// Timed iterations per benchmark, unless a group overrides.
    pub iters: u32,
    /// Substring filter on `group/id`; `None` runs everything.
    pub filter: Option<String>,
    /// Extra JSON-lines sink (`PS_BENCH_OUT`).
    pub out_path: Option<String>,
}

impl Config {
    /// Reads CLI arguments and `PS_BENCH_*` environment variables.
    ///
    /// Unknown flags are skipped so the binary tolerates whatever
    /// `cargo bench` passes (`--bench`, `--exact`, …); the first bare
    /// argument becomes the name filter, matching cargo's convention.
    pub fn from_args() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        let env_u32 =
            |key: &str| std::env::var(key).ok().and_then(|v| v.trim().parse::<u32>().ok());
        Config {
            warmup: env_u32("PS_BENCH_WARMUP").unwrap_or(3),
            iters: env_u32("PS_BENCH_ITERS").unwrap_or(30),
            filter,
            out_path: std::env::var("PS_BENCH_OUT").ok(),
        }
    }
}

/// Summary statistics over the per-iteration wall times, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    pub min_ns: u64,
    pub mean_ns: u64,
    pub median_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

impl Stats {
    /// Computes stats from raw samples. Panics on an empty slice.
    pub fn from_samples(samples: &[u64]) -> Stats {
        assert!(!samples.is_empty(), "no samples");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let median_ns =
            if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2 };
        Stats {
            min_ns: sorted[0],
            mean_ns: (sorted.iter().map(|&s| u128::from(s)).sum::<u128>() / n as u128) as u64,
            median_ns,
            p99_ns: quantile(&sorted, 0.99),
            max_ns: sorted[n - 1],
        }
    }
}

/// Linearly interpolated quantile over a sorted sample (the R-7 /
/// numpy-default estimator). Unlike nearest-rank, this keeps `p99`
/// distinct from `max` at small sample counts — at the old default of 10
/// iterations, nearest-rank p99 *was* the max, so one scheduler hiccup
/// polluted both columns of every `BENCH_*.json` row.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = pos - lo as f64;
    (sorted[lo] as f64 + (sorted[hi] - sorted[lo]) as f64 * frac).round() as u64
}

/// One finished benchmark: its identity plus the measured [`Stats`].
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Measured statistics.
    pub stats: Stats,
}

/// Top-level harness owned by a bench binary's `main`.
pub struct Bench {
    cfg: Config,
    ran: usize,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Builds a harness from CLI args and environment (the usual entry).
    pub fn from_args() -> Bench {
        Bench { cfg: Config::from_args(), ran: 0, results: Vec::new() }
    }

    /// Builds a harness with an explicit config (used by tests).
    pub fn with_config(cfg: Config) -> Bench {
        Bench { cfg, ran: 0, results: Vec::new() }
    }

    /// Every benchmark run so far, in execution order — lets a bench
    /// binary assert regression bounds against a stored baseline before
    /// [`Bench::finish`].
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The resolved configuration (for guards around such assertions).
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Opens a named benchmark group. Groups exist for naming and for
    /// per-group iteration overrides; drop the group (or let it go out of
    /// scope) before opening the next.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        let iters = self.cfg.iters;
        let warmup = self.cfg.warmup;
        Group { bench: self, name: name.to_string(), iters, warmup, batch: 1 }
    }

    /// Prints the closing summary line. Call last in `main`.
    pub fn finish(self) {
        eprintln!("[ps-bench] {} benchmark(s) run", self.ran);
    }

    fn record(&mut self, group: &str, id: &str, iters: u32, warmup: u32, batch: u32, stats: Stats) {
        self.ran += 1;
        self.results.push(BenchResult { group: group.to_owned(), id: id.to_owned(), stats });
        let json = format!(
            concat!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"iters\":{},\"warmup\":{},",
                "\"batch\":{},\"min_ns\":{},\"mean_ns\":{},\"median_ns\":{},",
                "\"p99_ns\":{},\"max_ns\":{}}}"
            ),
            group,
            id,
            iters,
            warmup,
            batch,
            stats.min_ns,
            stats.mean_ns,
            stats.median_ns,
            stats.p99_ns,
            stats.max_ns,
        );
        println!("{json}");
        if let Some(path) = &self.cfg.out_path {
            if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(f, "{json}");
            }
        }
        eprintln!(
            "[ps-bench] {group}/{id}: median {} p99 {} (n={iters})",
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p99_ns),
        );
    }
}

/// A named group of benchmarks; see [`Bench::group`].
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    iters: u32,
    warmup: u32,
    batch: u32,
}

impl Group<'_> {
    /// Overrides the timed iteration count for this group (the analogue
    /// of criterion's `sample_size`). `PS_BENCH_ITERS` still wins.
    pub fn iters(&mut self, n: u32) -> &mut Self {
        if std::env::var("PS_BENCH_ITERS").is_err() {
            self.iters = n.max(1);
        }
        self
    }

    /// Runs the closure `k` times per timed sample and divides, for
    /// benchmarks too fast for a single `Instant` read to resolve.
    pub fn batch(&mut self, k: u32) -> &mut Self {
        self.batch = k.max(1);
        self
    }

    /// Registers and immediately runs one benchmark. The closure's return
    /// value is passed through [`std::hint::black_box`] so the work is
    /// not optimized away.
    pub fn bench<R>(&mut self, id: impl Display, mut f: impl FnMut() -> R) {
        let id = id.to_string();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.bench.cfg.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            for _ in 0..self.batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            samples.push(elapsed / u64::from(self.batch));
        }
        let stats = Stats::from_samples(&samples);
        let (name, iters, warmup, batch) = (self.name.clone(), self.iters, self.warmup, self.batch);
        self.bench.record(&name, &id, iters, warmup, batch, stats);
    }
}

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let s = Stats::from_samples(&[10, 20, 30, 40, 50]);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 50);
        assert_eq!(s.median_ns, 30);
        assert_eq!(s.mean_ns, 30);
        assert_eq!(s.p99_ns, 50);
    }

    #[test]
    fn even_sample_count_averages_middle_pair() {
        let s = Stats::from_samples(&[10, 20, 30, 40]);
        assert_eq!(s.median_ns, 25);
    }

    #[test]
    fn p99_nearest_rank_on_large_sample() {
        let samples: Vec<u64> = (1..=1000).collect();
        let s = Stats::from_samples(&samples);
        assert_eq!(s.p99_ns, 990);
        assert_eq!(s.median_ns, 500);
    }

    #[test]
    fn p99_stays_below_max_at_small_sample_counts() {
        // The regression this guards: at 10 samples, nearest-rank p99
        // equalled max, so a single outlier iteration showed up twice.
        let samples: Vec<u64> = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 100];
        let s = Stats::from_samples(&samples);
        assert!(s.p99_ns < s.max_ns, "p99 {} should interpolate below max {}", s.p99_ns, s.max_ns);
        assert_eq!(s.p99_ns, 92); // 9 + 0.91 × (100 − 9)
    }

    #[test]
    fn quantile_interpolates_between_ranks() {
        assert_eq!(quantile(&[10, 20], 0.5), 15);
        assert_eq!(quantile(&[10], 0.99), 10);
        assert_eq!(quantile(&[0, 100], 0.25), 25);
    }

    #[test]
    fn bench_runs_and_counts() {
        let cfg = Config { warmup: 1, iters: 5, filter: None, out_path: None };
        let mut b = Bench::with_config(cfg);
        let mut calls = 0u32;
        {
            let mut g = b.group("self");
            g.bench("count_calls", || {
                calls += 1;
                calls
            });
        }
        // 1 warmup + 5 timed.
        assert_eq!(calls, 6);
        assert_eq!(b.ran, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let cfg = Config { warmup: 0, iters: 1, filter: Some("match_me".into()), out_path: None };
        let mut b = Bench::with_config(cfg);
        let mut hits = 0u32;
        {
            let mut g = b.group("self");
            g.bench("other", || hits += 1);
            g.bench("match_me_please", || hits += 1);
        }
        assert_eq!(hits, 1);
        assert_eq!(b.ran, 1);
    }

    #[test]
    fn batch_divides_per_iteration() {
        let cfg = Config { warmup: 0, iters: 2, filter: None, out_path: None };
        let mut b = Bench::with_config(cfg);
        let mut calls = 0u32;
        {
            let mut g = b.group("self");
            g.batch(10).bench("batched", || calls += 1);
        }
        assert_eq!(calls, 20);
    }
}
