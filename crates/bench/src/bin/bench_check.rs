//! `bench_check` — informational regression check of a fresh bench run
//! against a committed baseline.
//!
//! ```text
//! bench_check BASELINE.json FRESH.json [--threshold-pct N]
//! ```
//!
//! Both files are the `ps-bench` timing harness's JSON-lines output
//! (e.g. the committed `BENCH_engine.json` / `BENCH_scale.json` vs a
//! `PS_BENCH_OUT` capture from CI). Every `bench` name present in both
//! files is compared by `median_ns`; rows only one side has, and
//! non-timing rows (`engine_scale_host`, `engine_scale_mem` — no
//! `median_ns` field), are skipped.
//!
//! The check is **informational**: it always exits 0. CI runs benches at
//! 1 iteration on shared hardware, where a 10% swing is routine noise —
//! the point is a visible line in the CI log that says *which* rows
//! moved, so a real regression gets investigated (with proper iteration
//! counts) before the baseline is blindly refreshed. See
//! `OPTIMIZATION_LOG.md` for the refresh workflow.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts the string value of `"key":"…"` from a flat JSON line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

/// Extracts the integer value of `"key":123` from a flat JSON line.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// `bench name → median_ns` for every timing row in a JSON-lines body.
fn medians(body: &str) -> BTreeMap<String, u64> {
    body.lines()
        .filter_map(|l| Some((str_field(l, "bench")?, u64_field(l, "median_ns")?)))
        .collect()
}

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold_pct: i64 = 10;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold-pct" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => threshold_pct = t,
                None => {
                    eprintln!("--threshold-pct needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: bench_check BASELINE.json FRESH.json [--threshold-pct N]");
                return ExitCode::SUCCESS;
            }
            p => paths.push(p.to_owned()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench_check BASELINE.json FRESH.json [--threshold-pct N]");
        return ExitCode::from(2);
    };
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("cannot read {p}: {e}");
            None
        }
    };
    let (Some(base_body), Some(fresh_body)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::from(2);
    };
    let (base, fresh) = (medians(&base_body), medians(&fresh_body));

    let mut compared = 0u32;
    let mut regressed = 0u32;
    for (name, &fresh_ns) in &fresh {
        let Some(&base_ns) = base.get(name) else { continue };
        compared += 1;
        // Signed percent delta of the fresh median vs the baseline.
        let delta_pct =
            (i128::from(fresh_ns) - i128::from(base_ns)) * 100 / i128::from(base_ns.max(1));
        let flag = if delta_pct > i128::from(threshold_pct) {
            regressed += 1;
            "  <-- slower than baseline"
        } else {
            ""
        };
        println!(
            "bench_check: {name}: median {base_ns} ns -> {fresh_ns} ns ({delta_pct:+}%){flag}"
        );
    }
    if compared == 0 {
        println!("bench_check: no common timing rows between {baseline_path} and {fresh_path}");
    } else if regressed > 0 {
        println!(
            "bench_check: {regressed}/{compared} row(s) >{threshold_pct}% over baseline \
             (informational: CI medians are 1-iteration samples; re-measure with real \
             iteration counts before refreshing the baseline)"
        );
    } else {
        println!("bench_check: {compared} row(s) within {threshold_pct}% of baseline");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW: &str = r#"{"group":"g","bench":"b_one","iters":3,"median_ns":1000,"max_ns":1200}"#;

    #[test]
    fn extracts_fields_from_a_json_line() {
        assert_eq!(str_field(ROW, "bench").as_deref(), Some("b_one"));
        assert_eq!(u64_field(ROW, "median_ns"), Some(1000));
        assert_eq!(u64_field(ROW, "missing"), None);
    }

    #[test]
    fn medians_skips_rows_without_timing() {
        let body = format!("{ROW}\n{{\"group\":\"engine_scale_mem\",\"bench\":\"m\",\"nodes\":5}}");
        let m = medians(&body);
        assert_eq!(m.len(), 1);
        assert_eq!(m["b_one"], 1000);
    }
}
