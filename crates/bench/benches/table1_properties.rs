//! Table 1 as a benchmark: evaluation throughput of each property
//! predicate over generated traces (the checker's inner loop).

use ps_bench::timing::Bench;
use ps_trace::gen::{seeded, ReliableGen, TraceGen, UniversalGen, VsyncGen};
use ps_trace::props::standard_suite;
use ps_trace::{ProcessId, Trace};
use std::hint::black_box;

fn traces() -> Vec<Trace> {
    let group: Vec<ProcessId> = (0..5).map(ProcessId).collect();
    let mut rng = seeded(0xB1);
    let mut out = Vec::new();
    for size in [20usize, 80, 200] {
        out.push(UniversalGen { procs: 5 }.generate(&mut rng, size));
        out.push(ReliableGen { group: group.clone() }.generate(&mut rng, size));
        out.push(VsyncGen { initial: group.clone() }.generate(&mut rng, size));
    }
    out
}

fn main() {
    let trs = traces();
    let mut bench = Bench::from_args();
    let mut g = bench.group("table1_predicates");
    g.batch(8);
    for prop in standard_suite(5) {
        g.bench(format!("holds/{}", prop.name()), || {
            let mut count = 0u32;
            for tr in &trs {
                if prop.holds(black_box(tr)) {
                    count += 1;
                }
            }
            black_box(count)
        });
    }
    drop(g);
    bench.finish();
}
