//! Raw simulator engine throughput: events/sec on the bare [`ps_simnet::Sim`]
//! loop (no protocol stack), at 10/100/1000 nodes, under a broadcast-heavy
//! workload (fan-out packets hammer the queue and the per-node busy/pending
//! machinery) and a timer-heavy one (self-re-arming timers with spread-out
//! delays walk every level of the timing wheel).
//!
//! Each case processes a fixed, deterministic number of events, so the
//! per-iteration wall time is directly comparable across engine changes;
//! divide the event count (printed nowhere, but stable by construction)
//! by `median_ns` for events/sec. Baselines live in `BENCH_engine.json`.
//!
//! The `*_obs` variants attach a `ps-obs` recorder that is compiled in
//! but *disabled* — the configuration every untraced run now pays for —
//! and the `*_prof` variants do the same with a `ps-prof` profiler. The
//! binary asserts both families' in-run slowdown against their plain
//! siblings stays under 3% (skipped under `PS_BENCH_ITERS` smoke runs,
//! name filters, or `PS_BENCH_NO_BASELINE_CHECK=1`).

use ps_bench::timing::Bench;
use ps_bytes::Bytes;
use ps_obs::Recorder;
use ps_prof::Profiler;
use ps_simnet::{Agent, Dest, Packet, PointToPoint, Sim, SimApi, SimConfig, SimTime, TimerToken};
use std::hint::black_box;

/// First `talkers` nodes broadcast to everyone else every `period`, for a
/// fixed number of rounds, then the run quiesces.
struct Broadcaster {
    rounds_left: u32,
    period: SimTime,
    payload: Bytes,
    received: u64,
}

impl Agent for Broadcaster {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            api.set_timer(self.period, TimerToken(0));
        }
    }
    fn on_packet(&mut self, _: Packet, _: &mut SimApi<'_>) {
        self.received += 1;
    }
    fn on_timer(&mut self, _: TimerToken, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            api.send(Dest::Others, self.payload.clone());
            if self.rounds_left > 0 {
                api.set_timer(self.period, TimerToken(0));
            }
        }
    }
}

/// A recorder in the state every untraced run carries: allocated,
/// attached, switched off.
fn idle_recorder() -> Recorder {
    let rec = Recorder::with_capacity(1 << 12);
    rec.set_enabled(false);
    rec
}

/// A profiler in the state every unprofiled run carries: allocated,
/// attached, switched off.
fn idle_profiler() -> Profiler {
    Profiler::disabled()
}

fn broadcast_run(
    nodes: u16,
    talkers: u16,
    rounds: u32,
    rec: Option<Recorder>,
    prof: Option<Profiler>,
) -> u64 {
    let payload = Bytes::from_static(&[0xB7; 256]);
    let agents = (0..nodes)
        .map(|i| Broadcaster {
            rounds_left: if i < talkers { rounds } else { 0 },
            period: SimTime::from_micros(500),
            payload: payload.clone(),
            received: 0,
        })
        .collect();
    let mut cfg = SimConfig::default().seed(7).service_time(SimTime::from_micros(5));
    if let Some(rec) = rec {
        cfg = cfg.recorder(rec);
    }
    if let Some(prof) = prof {
        cfg = cfg.prof(prof);
    }
    let mut sim = Sim::new(cfg, Box::new(PointToPoint::new(SimTime::from_micros(120))), agents);
    sim.run_to_quiescence();
    sim.stats().events_processed
}

/// Every node keeps four self-timers alive, re-arming each with a
/// pseudo-random delay from its node stream — spreading entries across
/// all wheel levels — until its round budget runs out.
struct TimerChurn {
    rounds_left: u32,
}

impl Agent for TimerChurn {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        for t in 0..4u64 {
            api.set_timer(SimTime::from_micros(10 + t * 97), TimerToken(t));
        }
    }
    fn on_packet(&mut self, _: Packet, _: &mut SimApi<'_>) {}
    fn on_timer(&mut self, token: TimerToken, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            let delay = SimTime::from_micros(api.rng().range(10, 50_000));
            api.set_timer(delay, token);
        }
    }
}

fn timer_run(nodes: u16, rounds: u32, rec: Option<Recorder>, prof: Option<Profiler>) -> u64 {
    let agents = (0..nodes).map(|_| TimerChurn { rounds_left: rounds }).collect();
    let mut cfg = SimConfig::default().seed(11).service_time(SimTime::from_micros(1));
    if let Some(rec) = rec {
        cfg = cfg.recorder(rec);
    }
    if let Some(prof) = prof {
        cfg = cfg.prof(prof);
    }
    let mut sim = Sim::new(cfg, Box::new(PointToPoint::new(SimTime::from_micros(120))), agents);
    sim.run_to_quiescence();
    sim.stats().events_processed
}

/// Median per-bench slowdown of the `*_obs` and `*_prof` variants must
/// stay under 3%.
///
/// The gating comparison is in-run: each variant bench against its plain
/// sibling measured seconds earlier in the same process, using `min_ns`
/// (the least scheduler-noise-prone estimator of the true cost), with the
/// median then taken across benches. The stored `BENCH_engine.json`
/// medians from before observability existed are reported alongside for
/// trend-watching, but machine drift between sessions makes them too
/// noisy to gate on.
fn assert_disabled_recorder_overhead(bench: &Bench) {
    if std::env::var("PS_BENCH_ITERS").is_ok()
        || std::env::var("PS_BENCH_NO_BASELINE_CHECK").is_ok()
        || bench.config().filter.is_some()
    {
        return; // smoke/filtered runs have too few or missing samples
    }
    let min_of = |id: &str| {
        bench.results().iter().find(|r| r.id == id).map(|r| r.stats.min_ns).filter(|&n| n > 0)
    };
    let mut ratios: Vec<f64> = Vec::new();
    for r in bench.results() {
        let Some(base_name) = r.id.strip_suffix("_obs").or_else(|| r.id.strip_suffix("_prof"))
        else {
            continue;
        };
        if let Some(base_min) = min_of(base_name) {
            ratios.push(r.stats.min_ns as f64 / base_min as f64);
        }
    }
    if ratios.is_empty() {
        return;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    eprintln!(
        "[engine_throughput] disabled recorder/profiler overhead: median ratio {median:.3} over {} benches",
        ratios.len()
    );
    report_against_stored_baseline(bench);
    assert!(
        median < 1.03,
        "disabled recorder/profiler costs {:.1}% on the engine hot path (budget: 3%)",
        (median - 1.0) * 100.0
    );
}

/// Prints how this session's plain benches compare to `BENCH_engine.json`
/// (informational: catches slow drift without failing on machine noise).
fn report_against_stored_baseline(bench: &Bench) {
    let Ok(baseline) = std::fs::read_to_string("BENCH_engine.json")
        .or_else(|_| std::fs::read_to_string("../../BENCH_engine.json"))
    else {
        return;
    };
    // Our own fixed JSON-lines shape: pull "bench" and "median_ns" fields.
    let field = |line: &str, key: &str| -> Option<String> {
        let tag = format!("\"{key}\":");
        let rest = &line[line.find(&tag)? + tag.len()..];
        let rest = rest.trim_start_matches('"');
        let end = rest.find(|c| c == '"' || c == ',' || c == '}')?;
        Some(rest[..end].to_owned())
    };
    for r in bench.results() {
        if r.id.ends_with("_obs") || r.id.ends_with("_prof") {
            continue;
        }
        let base = baseline.lines().find_map(|l| {
            (field(l, "bench").as_deref() == Some(r.id.as_str()))
                .then(|| field(l, "median_ns")?.parse::<u64>().ok())?
        });
        if let Some(base_median) = base.filter(|&b| b > 0) {
            eprintln!(
                "[engine_throughput] {} vs stored baseline: {:.3}x",
                r.id,
                r.stats.median_ns as f64 / base_median as f64
            );
        }
    }
}

fn main() {
    let mut bench = Bench::from_args();
    {
        let mut g = bench.group("engine_throughput");
        g.iters(20);
        // Broadcast-heavy: sends × (n − 1) packet deliveries dominate.
        g.bench("broadcast_10", || black_box(broadcast_run(10, 10, 500, None, None)));
        g.bench("broadcast_100", || black_box(broadcast_run(100, 20, 50, None, None)));
        g.bench("broadcast_1000", || black_box(broadcast_run(1000, 4, 25, None, None)));
        // Timer-heavy: 4 × rounds self-re-arming timers per node.
        g.bench("timer_10", || black_box(timer_run(10, 2500, None, None)));
        g.bench("timer_100", || black_box(timer_run(100, 250, None, None)));
        g.bench("timer_1000", || black_box(timer_run(1000, 25, None, None)));
        // Same loads with an attached-but-disabled recorder: the cost of
        // having observability compiled in must be noise.
        g.bench("broadcast_10_obs", || {
            black_box(broadcast_run(10, 10, 500, Some(idle_recorder()), None))
        });
        g.bench("broadcast_100_obs", || {
            black_box(broadcast_run(100, 20, 50, Some(idle_recorder()), None))
        });
        g.bench("timer_10_obs", || black_box(timer_run(10, 2500, Some(idle_recorder()), None)));
        g.bench("timer_100_obs", || black_box(timer_run(100, 250, Some(idle_recorder()), None)));
        // Same loads with an attached-but-disabled profiler: compiled-in
        // profiling must also be noise.
        g.bench("broadcast_10_prof", || {
            black_box(broadcast_run(10, 10, 500, None, Some(idle_profiler())))
        });
        g.bench("broadcast_100_prof", || {
            black_box(broadcast_run(100, 20, 50, None, Some(idle_profiler())))
        });
        g.bench("timer_10_prof", || black_box(timer_run(10, 2500, None, Some(idle_profiler()))));
        g.bench("timer_100_prof", || black_box(timer_run(100, 250, None, Some(idle_profiler()))));
    }
    assert_disabled_recorder_overhead(&bench);
    bench.finish();
}
