//! Raw simulator engine throughput: events/sec on the bare [`ps_simnet::Sim`]
//! loop (no protocol stack), at 10/100/1000 nodes, under a broadcast-heavy
//! workload (fan-out packets hammer the queue and the per-node busy/pending
//! machinery) and a timer-heavy one (self-re-arming timers with spread-out
//! delays walk every level of the timing wheel).
//!
//! Each case processes a fixed, deterministic number of events, so the
//! per-iteration wall time is directly comparable across engine changes;
//! divide the event count (printed nowhere, but stable by construction)
//! by `median_ns` for events/sec. Baselines live in `BENCH_engine.json`.

use ps_bench::timing::Bench;
use ps_bytes::Bytes;
use ps_simnet::{
    Agent, Dest, NodeId, Packet, PointToPoint, Sim, SimApi, SimConfig, SimTime, TimerToken,
};
use std::hint::black_box;

/// First `talkers` nodes broadcast to everyone else every `period`, for a
/// fixed number of rounds, then the run quiesces.
struct Broadcaster {
    rounds_left: u32,
    period: SimTime,
    payload: Bytes,
    received: u64,
}

impl Agent for Broadcaster {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            api.set_timer(self.period, TimerToken(0));
        }
    }
    fn on_packet(&mut self, _: Packet, _: &mut SimApi<'_>) {
        self.received += 1;
    }
    fn on_timer(&mut self, _: TimerToken, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            api.send(Dest::Others, self.payload.clone());
            if self.rounds_left > 0 {
                api.set_timer(self.period, TimerToken(0));
            }
        }
    }
}

fn broadcast_run(nodes: u16, talkers: u16, rounds: u32) -> u64 {
    let payload = Bytes::from_static(&[0xB7; 256]);
    let agents = (0..nodes)
        .map(|i| Broadcaster {
            rounds_left: if i < talkers { rounds } else { 0 },
            period: SimTime::from_micros(500),
            payload: payload.clone(),
            received: 0,
        })
        .collect();
    let mut sim = Sim::new(
        SimConfig::default().seed(7).service_time(SimTime::from_micros(5)),
        Box::new(PointToPoint::new(SimTime::from_micros(120))),
        agents,
    );
    sim.run_to_quiescence();
    sim.stats().events_processed
}

/// Every node keeps four self-timers alive, re-arming each with a
/// pseudo-random delay from its node stream — spreading entries across
/// all wheel levels — until its round budget runs out.
struct TimerChurn {
    rounds_left: u32,
}

impl Agent for TimerChurn {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        for t in 0..4u64 {
            api.set_timer(SimTime::from_micros(10 + t * 97), TimerToken(t));
        }
    }
    fn on_packet(&mut self, _: Packet, _: &mut SimApi<'_>) {}
    fn on_timer(&mut self, token: TimerToken, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            let delay = SimTime::from_micros(api.rng().range(10, 50_000));
            api.set_timer(delay, token);
        }
    }
}

fn timer_run(nodes: u16, rounds: u32) -> u64 {
    let agents = (0..nodes).map(|_| TimerChurn { rounds_left: rounds }).collect();
    let mut sim = Sim::new(
        SimConfig::default().seed(11).service_time(SimTime::from_micros(1)),
        Box::new(PointToPoint::new(SimTime::from_micros(120))),
        agents,
    );
    sim.run_to_quiescence();
    sim.stats().events_processed
}

fn main() {
    let mut bench = Bench::from_args();
    {
        let mut g = bench.group("engine_throughput");
        g.iters(10);
        // Broadcast-heavy: sends × (n − 1) packet deliveries dominate.
        g.bench("broadcast_10", || black_box(broadcast_run(10, 10, 500)));
        g.bench("broadcast_100", || black_box(broadcast_run(100, 20, 50)));
        g.bench("broadcast_1000", || black_box(broadcast_run(1000, 4, 25)));
        // Timer-heavy: 4 × rounds self-re-arming timers per node.
        g.bench("timer_10", || black_box(timer_run(10, 2500)));
        g.bench("timer_100", || black_box(timer_run(100, 250)));
        g.bench("timer_1000", || black_box(timer_run(1000, 25)));
    }
    bench.finish();
}
