//! §7 switch overhead as a benchmark: full simulated runs containing one
//! switch, against a no-switch baseline of the same workload — the
//! difference is the simulation cost of the switch machinery itself.

use ps_bench::hybrid_group;
use ps_bench::timing::Bench;
use ps_simnet::SimTime;
use std::hint::black_box;

fn main() {
    let mut bench = Bench::from_args();
    let mut g = bench.group("switch_overhead");
    g.iters(10);

    g.bench("no_switch_baseline", || {
        let mut sim = hybrid_group(6, 40, vec![]);
        sim.run_until(SimTime::from_secs(1));
        black_box(sim.app_trace().len())
    });

    g.bench("one_switch", || {
        let mut sim = hybrid_group(6, 40, vec![(SimTime::from_millis(30), 1)]);
        sim.run_until(SimTime::from_secs(1));
        black_box(sim.app_trace().len())
    });

    g.bench("four_switches", || {
        let plan = vec![
            (SimTime::from_millis(20), 1),
            (SimTime::from_millis(40), 0),
            (SimTime::from_millis(60), 1),
            (SimTime::from_millis(80), 0),
        ];
        let mut sim = hybrid_group(6, 40, plan);
        sim.run_until(SimTime::from_secs(1));
        black_box(sim.app_trace().len())
    });

    drop(g);
    bench.finish();
}
