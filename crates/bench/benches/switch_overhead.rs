//! §7 switch overhead as a benchmark: full simulated runs containing one
//! switch, against a no-switch baseline of the same workload — the
//! difference is the simulation cost of the switch machinery itself.

use criterion::{criterion_group, criterion_main, Criterion};
use ps_bench::hybrid_group;
use ps_simnet::SimTime;
use std::hint::black_box;

fn switch_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch_overhead");
    g.sample_size(10);

    g.bench_function("no_switch_baseline", |b| {
        b.iter(|| {
            let mut sim = hybrid_group(6, 40, vec![]);
            sim.run_until(SimTime::from_secs(1));
            black_box(sim.app_trace().len())
        })
    });

    g.bench_function("one_switch", |b| {
        b.iter(|| {
            let mut sim = hybrid_group(6, 40, vec![(SimTime::from_millis(30), 1)]);
            sim.run_until(SimTime::from_secs(1));
            black_box(sim.app_trace().len())
        })
    });

    g.bench_function("four_switches", |b| {
        b.iter(|| {
            let plan = vec![
                (SimTime::from_millis(20), 1),
                (SimTime::from_millis(40), 0),
                (SimTime::from_millis(60), 1),
                (SimTime::from_millis(80), 0),
            ];
            let mut sim = hybrid_group(6, 40, plan);
            sim.run_until(SimTime::from_secs(1));
            black_box(sim.app_trace().len())
        })
    });

    g.finish();
}

criterion_group!(benches, switch_cost);
criterion_main!(benches);
