//! Scaling proof for the sharded engine: multi-segment topologies at
//! 1k / 10k / 100k nodes, serial engine vs [`ShardedSim`].
//!
//! Two workloads, both raw [`Agent`]s (`Send`, no protocol stack):
//!
//! * **bcast** — two talkers per segment broadcast on their own segment
//!   every 500 µs. Traffic is entirely segment-local: the embarrassingly
//!   parallel best case for sharding.
//! * **switch** — the paper's move in miniature: members route their
//!   traffic through a per-segment sequencer (which relays to the
//!   segment, and forwards every 4th relay across the bridge to the next
//!   segment's sequencer), then at half-time every node *switches
//!   protocol* to direct segment broadcast. Cross-bridge frames exercise
//!   the epoch-barrier exchange while the switch changes the load shape
//!   mid-run.
//!
//! `serial` rows run the plain [`Sim`] loop over a [`SegmentedBus`];
//! `sharded` rows run the same topology on [`ShardedSim`] with up to 8
//! worker threads. Same seed, same topology — the `sharded_determinism`
//! suite pins the two to byte-identical output, so every row pair is
//! timing the *same* computation.
//!
//! After the timed rows, one `{"group":"engine_scale_mem",...}` line per
//! configuration reports approximate resident bytes per node (from
//! `approx_mem_bytes`), which should stay roughly flat from 1k to 100k.
//!
//! Results are committed as `BENCH_scale.json`. `PS_SCALE_QUICK=1` skips
//! the 100k rows (CI smoke); `PS_BENCH_ITERS=1` shortens the rest.

use ps_bench::timing::Bench;
use ps_bytes::Bytes;
use ps_simnet::{
    Agent, Dest, NodeId, Packet, SegmentedBus, ShardedSim, Sim, SimApi, SimConfig, SimTime,
    TimerToken, Topology,
};
use std::hint::black_box;
use std::sync::Arc;

const SEG_SIZE: u32 = 250;
const TALKERS_PER_SEG: u32 = 2;
const ROUNDS: u32 = 20;
const PERIOD: SimTime = SimTime::from_micros(500);
const DEADLINE: SimTime = SimTime::from_micros(25_000);
const BRIDGE: SimTime = SimTime::from_micros(100);
const MAX_SHARDS: usize = 8;

const SEND: TimerToken = TimerToken(1);
const SWITCH: TimerToken = TimerToken(2);

/// 64 B payloads (85 µs serialization at 10 Mbit/s): heavy but stable
/// segment load. First byte tags the frame's role for the relay logic.
const REQUEST: &[u8] = &[0xA1; 64];
const RELAY: &[u8] = &[0xB2; 64];

/// Both workloads in one agent; `via_sequencer` starts true for the
/// switch workload and false for pure broadcast.
struct ScaleAgent {
    rounds_left: u32,
    /// Route sends through the segment sequencer (pre-switch mode).
    via_sequencer: bool,
    /// Flip to direct broadcast at this instant (`None`: never).
    switch_at: Option<SimTime>,
    /// First node of this node's segment — the sequencer.
    sequencer: NodeId,
    /// Next segment's sequencer, forwarded to on every 4th relay
    /// (sequencers only; `None` elsewhere).
    bridge_peer: Option<NodeId>,
    relays: u32,
    received: u64,
}

impl Agent for ScaleAgent {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            // Stagger first sends across the segment so talkers don't
            // all queue on the same microsecond.
            let stagger = SimTime::from_micros(u64::from(api.me().0) % 97);
            api.set_timer(PERIOD + stagger, SEND);
        }
        if let Some(at) = self.switch_at {
            api.set_timer(at, SWITCH);
        }
    }

    fn on_packet(&mut self, pkt: Packet, api: &mut SimApi<'_>) {
        self.received += 1;
        // Sequencer relay path (pre-switch): requests come in unicast,
        // go out as a segment broadcast, and every 4th relay also
        // crosses the bridge to the next sequencer.
        if api.me() == self.sequencer && pkt.payload.first() == Some(&REQUEST[0]) {
            api.send(Dest::Segment, Bytes::from_static(RELAY));
            self.relays += 1;
            if self.relays % 4 == 0 {
                if let Some(peer) = self.bridge_peer {
                    api.send(Dest::To(peer), Bytes::from_static(RELAY));
                }
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, api: &mut SimApi<'_>) {
        match token {
            SWITCH => self.via_sequencer = false,
            _ => {
                if self.rounds_left == 0 {
                    return;
                }
                self.rounds_left -= 1;
                if self.via_sequencer && api.me() != self.sequencer {
                    api.send(Dest::To(self.sequencer), Bytes::from_static(REQUEST));
                } else {
                    api.send(Dest::Segment, Bytes::from_static(RELAY));
                }
                if self.rounds_left > 0 {
                    api.set_timer(PERIOD, SEND);
                }
            }
        }
    }
}

fn topo(nodes: u32) -> Arc<Topology> {
    Arc::new(Topology::uniform(nodes, nodes / SEG_SIZE, BRIDGE))
}

fn agents(topo: &Topology, switching: bool) -> Vec<ScaleAgent> {
    let segs = topo.num_segments();
    (0..topo.num_nodes())
        .map(|n| {
            let seg = topo.segment_of(NodeId(n));
            let range = topo.segment_range(seg);
            let sequencer = NodeId(range.start);
            let is_talker = n - range.start < TALKERS_PER_SEG;
            ScaleAgent {
                rounds_left: if is_talker { ROUNDS } else { 0 },
                via_sequencer: switching,
                switch_at: switching.then_some(SimTime::from_micros(10_000)),
                sequencer,
                bridge_peer: (n == range.start && switching)
                    .then(|| NodeId(topo.segment_range((seg + 1) % segs).start)),
                relays: 0,
                received: 0,
            }
        })
        .collect()
}

fn config() -> SimConfig {
    SimConfig::default().seed(7).service_time(SimTime::from_micros(5))
}

/// The serial engine: one plain `Sim` over the whole topology.
fn run_serial(nodes: u32, switching: bool) -> u64 {
    let topo = topo(nodes);
    let medium = Box::new(SegmentedBus::new(Arc::clone(&topo), 7));
    let mut sim = Sim::new(config().topology(Arc::clone(&topo)), medium, agents(&topo, switching));
    sim.run_until(DEADLINE);
    sim.stats().events_processed
}

/// The sharded engine, parallel driver, up to [`MAX_SHARDS`] threads.
fn run_sharded(nodes: u32, switching: bool) -> u64 {
    let topo = topo(nodes);
    let shards = MAX_SHARDS.min(topo.num_segments() as usize);
    let agents = agents(&topo, switching);
    let mut sim = ShardedSim::new(config(), Arc::clone(&topo), shards, agents);
    sim.run_until(DEADLINE);
    sim.stats().events_processed
}

/// One short run per engine, reporting approximate bytes per node as its
/// own JSON line (not a timing row — `bench_check` ignores it).
fn mem_probe(nodes: u32, engine: &str) {
    let topo = topo(nodes);
    let bytes = match engine {
        "serial" => {
            let medium = Box::new(SegmentedBus::new(Arc::clone(&topo), 7));
            let mut sim =
                Sim::new(config().topology(Arc::clone(&topo)), medium, agents(&topo, false));
            sim.run_until(SimTime::from_micros(2_000));
            sim.approx_mem_bytes()
        }
        _ => {
            let shards = MAX_SHARDS.min(topo.num_segments() as usize);
            let agents = agents(&topo, false);
            let mut sim = ShardedSim::new(config(), Arc::clone(&topo), shards, agents);
            sim.run_until(SimTime::from_micros(2_000));
            sim.approx_mem_bytes()
        }
    };
    println!(
        "{{\"group\":\"engine_scale_mem\",\"bench\":\"{}_{}\",\"nodes\":{},\"bytes_per_node\":{}}}",
        label(nodes),
        engine,
        nodes,
        bytes as u64 / u64::from(nodes),
    );
}

fn label(nodes: u32) -> String {
    if nodes >= 1000 {
        format!("{}k", nodes / 1000)
    } else {
        nodes.to_string()
    }
}

fn main() {
    let quick = std::env::var("PS_SCALE_QUICK").is_ok();
    let sizes: &[u32] = if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000] };
    // The artifact must say what it was measured on: with one hardware
    // thread the sharded rows exercise the serial-fallback driver
    // (epoch-batched locality, no thread wins are possible).
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("{{\"group\":\"engine_scale_host\",\"bench\":\"host\",\"hw_threads\":{hw},\"max_shards\":{MAX_SHARDS}}}");
    let mut bench = Bench::from_args();
    {
        let mut g = bench.group("engine_scale");
        g.iters(3);
        for &nodes in sizes {
            let l = label(nodes);
            g.bench(format!("bcast_{l}_serial"), || black_box(run_serial(nodes, false)));
            g.bench(format!("bcast_{l}_sharded"), || black_box(run_sharded(nodes, false)));
            g.bench(format!("switch_{l}_serial"), || black_box(run_serial(nodes, true)));
            g.bench(format!("switch_{l}_sharded"), || black_box(run_sharded(nodes, true)));
        }
    }
    if bench.config().filter.is_none() {
        for &nodes in sizes {
            mem_probe(nodes, "serial");
            mem_probe(nodes, "sharded");
        }
    }
    bench.finish();
}
