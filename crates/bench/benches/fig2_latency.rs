//! Figure 2 as a benchmark: one sweep point per protocol per load level.
//! Criterion's statistics quantify the simulation cost; the *scientific*
//! output (latencies, crossover) is printed by `repro fig2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps_harness::experiments::fig2::{run_point, Fig2Config, Series};
use std::hint::black_box;

fn fig2_points(c: &mut Criterion) {
    let cfg = Fig2Config {
        warmup: ps_simnet::SimTime::from_millis(200),
        measure: ps_simnet::SimTime::from_millis(600),
        ..Fig2Config::default()
    };
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for series in Series::ALL {
        for k in [2u16, 8] {
            group.bench_with_input(
                BenchmarkId::new(series.name(), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        let (sim, _) = run_point(black_box(&cfg), series, k);
                        black_box(sim.net_stats().frames_sent)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig2_points);
criterion_main!(benches);
