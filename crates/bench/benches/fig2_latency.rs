//! Figure 2 as a benchmark: one sweep point per protocol per load level.
//! The harness statistics quantify the simulation cost; the *scientific*
//! output (latencies, crossover) is printed by `repro fig2`.

use ps_bench::timing::Bench;
use ps_harness::experiments::fig2::{run_point, Fig2Config, Series};
use std::hint::black_box;

fn main() {
    let cfg = Fig2Config {
        warmup: ps_simnet::SimTime::from_millis(200),
        measure: ps_simnet::SimTime::from_millis(600),
        ..Fig2Config::default()
    };
    let mut bench = Bench::from_args();
    let mut group = bench.group("fig2");
    group.iters(10);
    for series in Series::ALL {
        for k in [2u16, 8] {
            group.bench(format!("{}/{k}", series.name()), || {
                let (sim, _) = run_point(black_box(&cfg), series, k);
                black_box(sim.net_stats().frames_sent)
            });
        }
    }
    drop(group);
    bench.finish();
}
