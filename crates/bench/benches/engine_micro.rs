//! Substrate micro-benchmarks: the event queue, wire codec, shared-bus
//! model, and the end-to-end simulator event loop.

use ps_bench::plain_group;
use ps_bench::timing::Bench;
use ps_bytes::Bytes;
use ps_obs::{MonitorSet, Recorder};
use ps_simnet::{
    Agent, Dest, DetRng, EthernetConfig, EventQueue, Medium as _, NodeId, Packet, PointToPoint,
    SharedBus, Sim, SimApi, SimConfig, SimTime, TimerToken,
};
use ps_wire::{Decoder, Encoder};
use std::hint::black_box;

fn event_queue(bench: &mut Bench) {
    let mut g = bench.group("event_queue");
    g.bench("push_pop_10k", || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.push(SimTime::from_micros(i * 37 % 5000), i);
        }
        let mut acc = 0u64;
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        black_box(acc)
    });
}

fn codec(bench: &mut Bench) {
    let mut g = bench.group("wire_codec");
    g.batch(64);
    let payload = vec![0xA5u8; 1024];
    g.bench("encode_1k_frame", || {
        let mut enc = Encoder::with_capacity(1100);
        enc.put_varint(black_box(123456));
        enc.put_u16(7);
        enc.put_bytes(&payload);
        black_box(enc.finish())
    });
    let mut enc = Encoder::new();
    enc.put_varint(123456);
    enc.put_u16(7);
    enc.put_bytes(&payload);
    let framed = enc.finish();
    g.bench("decode_1k_frame", || {
        let mut dec = Decoder::new(black_box(&framed));
        let a = dec.get_varint().unwrap();
        let b2 = dec.get_u16().unwrap();
        let p = dec.get_bytes().unwrap();
        black_box((a, b2, p.len()))
    });
    let body = Bytes::from(payload.clone());
    g.bench("header_push_pop", || {
        let framed = ps_wire::push_header(&0xDEAD_BEEFu64, body.clone());
        let (h, rest) = ps_wire::pop_header::<u64>(&framed).unwrap();
        black_box((h, rest.len()))
    });
    // The 1-byte varint path in isolation: real headers are dominated by
    // small values (channel ids, process ids, sub-128 lengths), so this
    // is the shape the put/get_varint fast paths are judged on.
    g.bench("varint_small_encode", || {
        let mut enc = Encoder::with_capacity(64);
        for v in 0..32u64 {
            enc.put_varint(black_box(v));
        }
        black_box(enc.finish())
    });
    let mut enc = Encoder::new();
    for v in 0..32u64 {
        enc.put_varint(v);
    }
    let small = enc.finish();
    g.bench("varint_small_decode", || {
        let mut dec = Decoder::new(black_box(&small));
        let mut acc = 0u64;
        for _ in 0..32 {
            acc = acc.wrapping_add(dec.get_varint().unwrap());
        }
        black_box(acc)
    });
}

fn bus_model(bench: &mut Bench) {
    let mut g = bench.group("bus_model");
    g.batch(64);
    let mut bus = SharedBus::new(EthernetConfig::default());
    let mut rng = DetRng::new(1);
    let dests: Vec<NodeId> = (0..10).map(NodeId).collect();
    let mut t = SimTime::ZERO;
    g.bench("shared_bus_transmit_plan", || {
        t += SimTime::from_micros(100);
        black_box(bus.transmit(NodeId(0), &dests, 1024, t, &mut rng).deliveries.len())
    });
    // A/B pair for the broadcast fan-out shape (1000 destinations): the
    // allocating `transmit` against the scratch-plan `transmit_into` the
    // simulator hot path uses. The gap is pure allocator churn.
    let wide: Vec<NodeId> = (0..1000).map(NodeId).collect();
    g.bench("bus_transmit_1000_alloc", || {
        t += SimTime::from_micros(100);
        black_box(bus.transmit(NodeId(0), &wide, 256, t, &mut rng).deliveries.len())
    });
    let mut plan = ps_simnet::TxPlan::default();
    g.bench("bus_transmit_1000_scratch", || {
        t += SimTime::from_micros(100);
        bus.transmit_into(NodeId(0), &wide, 256, t, &mut rng, &mut plan);
        black_box(plan.deliveries.len())
    });
}

/// First four nodes broadcast to everyone every 500 µs for 25 rounds —
/// the `broadcast_1000` shape from `engine_throughput`, reproduced here
/// for the causal-observability A/B pair.
struct Broadcaster {
    rounds_left: u32,
    payload: Bytes,
    received: u64,
}

impl Agent for Broadcaster {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            api.set_timer(SimTime::from_micros(500), TimerToken(0));
        }
    }
    fn on_packet(&mut self, _: Packet, _: &mut SimApi<'_>) {
        self.received += 1;
    }
    fn on_timer(&mut self, _: TimerToken, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            api.send(Dest::Others, self.payload.clone());
            if self.rounds_left > 0 {
                api.set_timer(SimTime::from_micros(500), TimerToken(0));
            }
        }
    }
}

fn broadcast_1000(rec: Option<Recorder>) -> u64 {
    let payload = Bytes::from_static(&[0xB7; 256]);
    let agents = (0..1000u16)
        .map(|i| Broadcaster {
            rounds_left: if i < 4 { 25 } else { 0 },
            payload: payload.clone(),
            received: 0,
        })
        .collect();
    let mut cfg = SimConfig::default().seed(7).service_time(SimTime::from_micros(5));
    if let Some(rec) = rec {
        cfg = cfg.recorder(rec);
    }
    let mut sim = Sim::new(cfg, Box::new(PointToPoint::new(SimTime::from_micros(120))), agents);
    sim.run_to_quiescence();
    sim.stats().events_processed
}

fn causal_obs(bench: &mut Bench) {
    // A/B pair at the broadcast_1000 shape: the full observability stack
    // live — recorder enabled (every event carrying its causal parent
    // link) with the standard monitor set streaming each one — against
    // the fully detached baseline. This prices *enabled* causal tracing;
    // the <3% budget on the *disabled* configuration is asserted by
    // `engine_throughput`.
    let mut g = bench.group("causal_obs");
    g.iters(10);
    g.bench("broadcast_1000_detached", || black_box(broadcast_1000(None)));
    g.bench("broadcast_1000_attached", || {
        let rec = Recorder::with_capacity(1 << 18);
        let monitors = MonitorSet::standard(1000, 1_000_000);
        monitors.attach(&rec);
        black_box(broadcast_1000(Some(rec)))
    });
}

fn sim_loop(bench: &mut Bench) {
    let mut g = bench.group("sim_event_loop");
    g.iters(10);
    g.bench("fifo_group_200_messages", || {
        let mut sim = plain_group(5, 200, || Box::new(ps_protocols::FifoLayer::new()));
        sim.run_until(SimTime::from_secs(2));
        black_box(sim.net_stats().events_processed)
    });
    g.bench("token_order_group_100_messages", || {
        let mut sim = plain_group(5, 100, || Box::new(ps_protocols::TokenOrderLayer::new()));
        sim.run_until(SimTime::from_secs(1));
        black_box(sim.net_stats().events_processed)
    });
}

fn main() {
    let mut bench = Bench::from_args();
    event_queue(&mut bench);
    codec(&mut bench);
    bus_model(&mut bench);
    causal_obs(&mut bench);
    sim_loop(&mut bench);
    bench.finish();
}
