//! Substrate micro-benchmarks: the event queue, wire codec, shared-bus
//! model, and the end-to-end simulator event loop.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ps_bench::plain_group;
use ps_simnet::{DetRng, EthernetConfig, EventQueue, Medium as _, NodeId, SharedBus, SimTime};
use ps_wire::{Decoder, Encoder};
use std::hint::black_box;

fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_micros(i * 37 % 5000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let payload = vec![0xA5u8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("encode_1k_frame", |b| {
        b.iter(|| {
            let mut enc = Encoder::with_capacity(1100);
            enc.put_varint(black_box(123456));
            enc.put_u16(7);
            enc.put_bytes(&payload);
            black_box(enc.finish())
        })
    });
    let mut enc = Encoder::new();
    enc.put_varint(123456);
    enc.put_u16(7);
    enc.put_bytes(&payload);
    let framed = enc.finish();
    g.bench_function("decode_1k_frame", |b| {
        b.iter(|| {
            let mut dec = Decoder::new(black_box(&framed));
            let a = dec.get_varint().unwrap();
            let b2 = dec.get_u16().unwrap();
            let p = dec.get_bytes().unwrap();
            black_box((a, b2, p.len()))
        })
    });
    g.bench_function("header_push_pop", |b| {
        let body = Bytes::from(payload.clone());
        b.iter(|| {
            let framed = ps_wire::push_header(&0xDEAD_BEEFu64, body.clone());
            let (h, rest) = ps_wire::pop_header::<u64>(&framed).unwrap();
            black_box((h, rest.len()))
        })
    });
    g.finish();
}

fn bus_model(c: &mut Criterion) {
    c.bench_function("shared_bus_transmit_plan", |b| {
        let mut bus = SharedBus::new(EthernetConfig::default());
        let mut rng = DetRng::new(1);
        let dests: Vec<NodeId> = (0..10).map(NodeId).collect();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimTime::from_micros(100);
            black_box(bus.transmit(NodeId(0), &dests, 1024, t, &mut rng).deliveries.len())
        })
    });
}

fn sim_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_event_loop");
    g.sample_size(10);
    g.bench_function("fifo_group_200_messages", |b| {
        b.iter(|| {
            let mut sim = plain_group(5, 200, || Box::new(ps_protocols::FifoLayer::new()));
            sim.run_until(SimTime::from_secs(2));
            black_box(sim.net_stats().events_processed)
        })
    });
    g.bench_function("token_order_group_100_messages", |b| {
        b.iter(|| {
            let mut sim = plain_group(5, 100, || Box::new(ps_protocols::TokenOrderLayer::new()));
            sim.run_until(SimTime::from_secs(1));
            black_box(sim.net_stats().events_processed)
        })
    });
    g.finish();
}

criterion_group!(benches, event_queue, codec, bus_model, sim_loop);
criterion_main!(benches);
