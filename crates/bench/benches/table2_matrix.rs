//! Table 2 as a benchmark: meta-property checking cost, per cell class and
//! for the whole matrix at the quick budget.

use ps_bench::timing::Bench;
use ps_trace::check::{check_cell, table2, CheckConfig};
use ps_trace::gen::{ReliableGen, TotalOrderGen, TraceGen, VsyncGen};
use ps_trace::meta::MetaKind;
use ps_trace::props::{Reliability, TotalOrder, VirtualSynchrony};
use ps_trace::ProcessId;
use std::hint::black_box;

fn main() {
    let group: Vec<ProcessId> = (0..4).map(ProcessId).collect();
    let cfg = CheckConfig::quick();

    let mut bench = Bench::from_args();
    let mut g = bench.group("table2_cells");
    g.iters(20);

    // A ✗ cell found quickly (counterexample on the first prefixes).
    {
        let prop = Reliability::new(group.clone());
        let gen = ReliableGen { group: group.clone() };
        let gens: [&dyn TraceGen; 1] = [&gen];
        g.bench("reliability_safety_negative", || {
            black_box(check_cell(&prop, MetaKind::Safety, &gens, &cfg)).preserved
        });
    }

    // A ✓ cell (full budget consumed).
    {
        let gen = TotalOrderGen { group: group.clone() };
        let gens: [&dyn TraceGen; 1] = [&gen];
        g.bench("total_order_asynchrony_positive", || {
            black_box(check_cell(&TotalOrder, MetaKind::Asynchrony, &gens, &cfg)).preserved
        });
    }

    // The most expensive predicate (virtual synchrony) under erasure.
    {
        let prop = VirtualSynchrony::new(group.clone());
        let gen = VsyncGen { initial: group.clone() };
        let gens: [&dyn TraceGen; 1] = [&gen];
        g.bench("vsync_memoryless_negative", || {
            black_box(check_cell(&prop, MetaKind::Memoryless, &gens, &cfg)).preserved
        });
    }
    drop(g);

    let mut g = bench.group("table2_full");
    g.iters(10);
    g.bench("quick_matrix_48_cells", || black_box(table2(4, &cfg)).len());
    drop(g);

    bench.finish();
}
