//! Table 2 as a benchmark: meta-property checking cost, per cell class and
//! for the whole matrix at the quick budget.

use criterion::{criterion_group, criterion_main, Criterion};
use ps_trace::check::{check_cell, table2, CheckConfig};
use ps_trace::gen::{ReliableGen, TotalOrderGen, TraceGen, VsyncGen};
use ps_trace::meta::MetaKind;
use ps_trace::props::{Reliability, TotalOrder, VirtualSynchrony};
use ps_trace::ProcessId;
use std::hint::black_box;

fn cells(c: &mut Criterion) {
    let group: Vec<ProcessId> = (0..4).map(ProcessId).collect();
    let cfg = CheckConfig::quick();

    let mut g = c.benchmark_group("table2_cells");
    g.sample_size(20);

    // A ✗ cell found quickly (counterexample on the first prefixes).
    g.bench_function("reliability_safety_negative", |b| {
        let prop = Reliability::new(group.clone());
        let gen = ReliableGen { group: group.clone() };
        let gens: [&dyn TraceGen; 1] = [&gen];
        b.iter(|| black_box(check_cell(&prop, MetaKind::Safety, &gens, &cfg)).preserved)
    });

    // A ✓ cell (full budget consumed).
    g.bench_function("total_order_asynchrony_positive", |b| {
        let gen = TotalOrderGen { group: group.clone() };
        let gens: [&dyn TraceGen; 1] = [&gen];
        b.iter(|| black_box(check_cell(&TotalOrder, MetaKind::Asynchrony, &gens, &cfg)).preserved)
    });

    // The most expensive predicate (virtual synchrony) under erasure.
    g.bench_function("vsync_memoryless_negative", |b| {
        let prop = VirtualSynchrony::new(group.clone());
        let gen = VsyncGen { initial: group.clone() };
        let gens: [&dyn TraceGen; 1] = [&gen];
        b.iter(|| black_box(check_cell(&prop, MetaKind::Memoryless, &gens, &cfg)).preserved)
    });
    g.finish();

    let mut g = c.benchmark_group("table2_full");
    g.sample_size(10);
    g.bench_function("quick_matrix_48_cells", |b| {
        b.iter(|| black_box(table2(4, &cfg)).len())
    });
    g.finish();
}

criterion_group!(benches, cells);
criterion_main!(benches);
