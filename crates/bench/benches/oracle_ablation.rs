//! Ablations called out in DESIGN.md: switching-protocol variant
//! (broadcast vs. token ring) and oracle hysteresis, measured as full
//! simulation runs.

use ps_bench::timing::Bench;
use ps_core::{hybrid_total_order, ManualOracle, NeverOracle, Oracle, SwitchConfig, SwitchVariant};
use ps_harness::experiments::oscillation::{run as run_osc, OscillationConfig};
use ps_simnet::{PointToPoint, SimTime};
use ps_stack::GroupSimBuilder;
use ps_trace::ProcessId;
use std::hint::black_box;

fn variant_ablation(bench: &mut Bench) {
    let mut g = bench.group("switch_variant");
    g.iters(10);
    for (name, variant) in [
        ("broadcast", SwitchVariant::Broadcast),
        ("token_ring", SwitchVariant::TokenRing { idle_hold: SimTime::from_millis(2) }),
    ] {
        g.bench(format!("one_switch/{name}"), || {
            let mut builder = GroupSimBuilder::new(5)
                .seed(1)
                .medium(Box::new(PointToPoint::new(SimTime::from_micros(300))))
                .stack_factory(move |p, _, ids| {
                    let oracle: Box<dyn Oracle> = if p == ProcessId(0) {
                        Box::new(ManualOracle::new(vec![(SimTime::from_millis(20), 1)]))
                    } else {
                        Box::new(NeverOracle)
                    };
                    let cfg = SwitchConfig {
                        variant,
                        observe_interval: SimTime::from_millis(10),
                        ..SwitchConfig::default()
                    };
                    hybrid_total_order(ids, cfg, ProcessId(0), oracle).0
                });
            for i in 0..20u64 {
                builder = builder.send_at(
                    SimTime::from_millis(2 + 3 * i),
                    ProcessId((i % 5) as u16),
                    "x",
                );
            }
            let mut sim = builder.build();
            sim.run_until(SimTime::from_millis(500));
            black_box(sim.app_trace().len())
        });
    }
}

fn hysteresis_ablation(bench: &mut Bench) {
    let mut g = bench.group("oracle_hysteresis");
    g.iters(10);
    for h in [0usize, 2] {
        let cfg = OscillationConfig {
            hysteresis: vec![h],
            phases: 4,
            phase: SimTime::from_millis(200),
            ..OscillationConfig::default()
        };
        g.bench(format!("oscillation_run/{h}"), || black_box(run_osc(&cfg))[0].switches);
    }
}

fn main() {
    let mut bench = Bench::from_args();
    variant_ablation(&mut bench);
    hysteresis_ablation(&mut bench);
    bench.finish();
}
