//! Ad-hoc profiling probe for the `causal_obs` A/B shape: the
//! `broadcast_1000` micro-bench with the recorder enabled and the
//! standard monitor set attached, run under an enabled profiler so the
//! observability cost splits into `obs/record` (ring write + causal id
//! minting) vs `obs/sinks/*` (monitor dispatch).
//!
//! Usage: `cargo run --release -p ps-bench --example obs_probe`

use ps_bytes::Bytes;
use ps_obs::{MonitorSet, Recorder};
use ps_prof::Profiler;
use ps_simnet::{Agent, Dest, Packet, PointToPoint, Sim, SimApi, SimConfig, SimTime, TimerToken};

struct Broadcaster {
    rounds_left: u32,
    payload: Bytes,
    received: u64,
}

impl Agent for Broadcaster {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            api.set_timer(SimTime::from_micros(500), TimerToken(0));
        }
    }
    fn on_packet(&mut self, _: Packet, _: &mut SimApi<'_>) {
        self.received += 1;
    }
    fn on_timer(&mut self, _: TimerToken, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            api.send(Dest::Others, self.payload.clone());
            if self.rounds_left > 0 {
                api.set_timer(SimTime::from_micros(500), TimerToken(0));
            }
        }
    }
}

fn run(attach: bool) {
    let prof = Profiler::enabled();
    let payload = Bytes::from_static(&[0xB7; 256]);
    let agents = (0..1000u16)
        .map(|i| Broadcaster {
            rounds_left: if i < 4 { 25 } else { 0 },
            payload: payload.clone(),
            received: 0,
        })
        .collect();
    let mut cfg =
        SimConfig::default().seed(7).service_time(SimTime::from_micros(5)).prof(prof.clone());
    if attach {
        let rec = Recorder::with_capacity(1 << 18);
        let monitors = MonitorSet::standard(1000, 1_000_000);
        monitors.attach(&rec);
        cfg = cfg.recorder(rec);
    }
    let mut sim = Sim::new(cfg, Box::new(PointToPoint::new(SimTime::from_micros(120))), agents);
    {
        let _root = prof.span(&[]);
        sim.run_to_quiescence();
    }
    println!(
        "== {}: {} events ==",
        if attach { "attached" } else { "detached" },
        sim.stats().events_processed
    );
    for r in prof.rows() {
        if r.enters == 0 {
            continue;
        }
        println!(
            "  {:<22} enters {:>9}  total {:>8.2} ms  self {:>8.2} ms",
            if r.path.is_empty() { "(root)".into() } else { r.path },
            r.enters,
            r.total_ns as f64 / 1e6,
            r.self_ns as f64 / 1e6,
        );
    }
}

fn main() {
    run(false);
    run(true);
}
