//! Ad-hoc profiling probe for the `engine_scale` switch workload: runs
//! the serial engine and the sharded serial-fallback driver with an
//! enabled profiler and prints the per-component attribution, so driver
//! overhead (epoch machinery vs event work) can be compared directly.
//!
//! Usage: `cargo run --release -p ps-bench --example scale_probe [nodes]`

use ps_bytes::Bytes;
use ps_prof::Profiler;
use ps_simnet::{
    Agent, Dest, NodeId, Packet, SegmentedBus, ShardedSim, Sim, SimApi, SimConfig, SimTime,
    TimerToken, Topology,
};
use std::sync::Arc;

const SEG_SIZE: u32 = 250;
const TALKERS_PER_SEG: u32 = 2;
const ROUNDS: u32 = 20;
const PERIOD: SimTime = SimTime::from_micros(500);
const DEADLINE: SimTime = SimTime::from_micros(25_000);
const BRIDGE: SimTime = SimTime::from_micros(100);
const MAX_SHARDS: usize = 8;

const SEND: TimerToken = TimerToken(1);
const SWITCH: TimerToken = TimerToken(2);

const REQUEST: &[u8] = &[0xA1; 64];
const RELAY: &[u8] = &[0xB2; 64];

/// Same agent as `benches/engine_scale.rs` (switch workload half).
struct ScaleAgent {
    rounds_left: u32,
    via_sequencer: bool,
    switch_at: Option<SimTime>,
    sequencer: NodeId,
    bridge_peer: Option<NodeId>,
    relays: u32,
    received: u64,
}

impl Agent for ScaleAgent {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        if self.rounds_left > 0 {
            let stagger = SimTime::from_micros(u64::from(api.me().0) % 97);
            api.set_timer(PERIOD + stagger, SEND);
        }
        if let Some(at) = self.switch_at {
            api.set_timer(at, SWITCH);
        }
    }

    fn on_packet(&mut self, pkt: Packet, api: &mut SimApi<'_>) {
        self.received += 1;
        if api.me() == self.sequencer && pkt.payload.first() == Some(&REQUEST[0]) {
            api.send(Dest::Segment, Bytes::from_static(RELAY));
            self.relays += 1;
            if self.relays % 4 == 0 {
                if let Some(peer) = self.bridge_peer {
                    api.send(Dest::To(peer), Bytes::from_static(RELAY));
                }
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, api: &mut SimApi<'_>) {
        match token {
            SWITCH => self.via_sequencer = false,
            _ => {
                if self.rounds_left == 0 {
                    return;
                }
                self.rounds_left -= 1;
                if self.via_sequencer && api.me() != self.sequencer {
                    api.send(Dest::To(self.sequencer), Bytes::from_static(REQUEST));
                } else {
                    api.send(Dest::Segment, Bytes::from_static(RELAY));
                }
                if self.rounds_left > 0 {
                    api.set_timer(PERIOD, SEND);
                }
            }
        }
    }
}

fn agents(topo: &Topology) -> Vec<ScaleAgent> {
    let segs = topo.num_segments();
    (0..topo.num_nodes())
        .map(|n| {
            let seg = topo.segment_of(NodeId(n));
            let range = topo.segment_range(seg);
            ScaleAgent {
                rounds_left: if n - range.start < TALKERS_PER_SEG { ROUNDS } else { 0 },
                via_sequencer: true,
                switch_at: Some(SimTime::from_micros(10_000)),
                sequencer: NodeId(range.start),
                bridge_peer: (n == range.start)
                    .then(|| NodeId(topo.segment_range((seg + 1) % segs).start)),
                relays: 0,
                received: 0,
            }
        })
        .collect()
}

fn dump(tag: &str, prof: &Profiler, events: u64) {
    println!("== {tag}: {events} events, total {} ms ==", prof.total_ns() / 1_000_000);
    for r in prof.rows() {
        if r.enters == 0 {
            continue;
        }
        println!(
            "  {:<22} enters {:>9}  total {:>8.2} ms  self {:>8.2} ms",
            if r.path.is_empty() { "(root)".into() } else { r.path },
            r.enters,
            r.total_ns as f64 / 1e6,
            r.self_ns as f64 / 1e6,
        );
    }
    println!("  other: {:.2} ms", prof.other_ns() as f64 / 1e6);
}

fn main() {
    let nodes: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let topo = Arc::new(Topology::uniform(nodes, nodes / SEG_SIZE, BRIDGE));
    let cfg = || SimConfig::default().seed(7).service_time(SimTime::from_micros(5));

    let prof = Profiler::enabled();
    let mut sim = Sim::new(
        cfg().topology(Arc::clone(&topo)).prof(prof.clone()),
        Box::new(SegmentedBus::new(Arc::clone(&topo), 7)),
        agents(&topo),
    );
    {
        let _root = prof.span(&[]);
        sim.run_until(DEADLINE);
    }
    dump("serial", &prof, sim.stats().events_processed);

    let prof = Profiler::enabled();
    let shards = MAX_SHARDS.min(topo.num_segments() as usize);
    let mut sim =
        ShardedSim::new(cfg().prof(prof.clone()), Arc::clone(&topo), shards, agents(&topo));
    {
        let _root = prof.span(&[]);
        sim.run_until_serial(DEADLINE);
    }
    dump(
        &format!("sharded serial-fallback ({shards} shards)"),
        &prof,
        sim.stats().events_processed,
    );
}
