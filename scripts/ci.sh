#!/usr/bin/env bash
# Pre-merge gate. Everything runs with CARGO_NET_OFFLINE=true: the
# workspace has zero external crate dependencies, and this is how we keep
# it that way — any reintroduced registry dependency fails the build here
# before it can land.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release (offline)"
cargo build --release

echo "==> cargo test (offline)"
cargo test -q

echo "==> cargo bench --no-run (offline)"
cargo bench --workspace --no-run

echo "ci: all gates green"
