#!/usr/bin/env bash
# Pre-merge gate. Everything runs with CARGO_NET_OFFLINE=true: the
# workspace has zero external crate dependencies, and this is how we keep
# it that way — any reintroduced registry dependency fails the build here
# before it can land.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release (offline)"
cargo build --release

echo "==> cargo test (offline)"
cargo test -q

echo "==> cargo bench --no-run (offline)"
cargo bench --workspace --no-run

echo "==> engine_throughput smoke run (1 warmup + 1 iter, offline)"
# A real (if statistically meaningless) run: catches engine regressions
# that only show up at bench scale, and proves the BENCH_engine.json
# emission path works. Written under target/ so the committed baseline
# stays pristine; refresh that baseline with more iters (see
# EXPERIMENTS.md) when engine performance changes intentionally.
rm -f target/BENCH_engine.json
PS_BENCH_ITERS=1 PS_BENCH_WARMUP=1 PS_BENCH_OUT="$(pwd)/target/BENCH_engine.json" \
    cargo bench --bench engine_throughput
test -s target/BENCH_engine.json

echo "==> engine_scale smoke run (1k/10k only, sharded engine included, offline)"
# Exercises the sharded event loop end to end (ShardedSim vs the plain
# engine on bridged multi-segment topologies) at CI-friendly sizes;
# PS_SCALE_QUICK skips the 100k rows.
rm -f target/BENCH_scale.json
PS_SCALE_QUICK=1 PS_BENCH_ITERS=1 PS_BENCH_WARMUP=1 \
    PS_BENCH_OUT="$(pwd)/target/BENCH_scale.json" \
    cargo bench --bench engine_scale
test -s target/BENCH_scale.json

echo "==> bench_check: fresh medians vs committed baselines (informational)"
# Never fails the gate: 1-iteration CI medians are noisy by construction.
# The value is the visible per-row delta in the log — a real regression
# shows up here first, then gets re-measured with proper iteration counts
# (see OPTIMIZATION_LOG.md) before anyone refreshes a baseline.
cargo run --release -q --bin bench_check -- BENCH_engine.json target/BENCH_engine.json
cargo run --release -q --bin bench_check -- BENCH_scale.json target/BENCH_scale.json

echo "==> trace smoke: repro --trace emits valid, reproducible files (offline)"
# The instrumented repro run must (a) produce traces that parse as JSON in
# both formats, and (b) be byte-identical across same-seed invocations,
# serial and parallel — the recorder may not perturb determinism.
rm -rf target/ci-trace && mkdir -p target/ci-trace
cargo run --release -q --bin repro -- trace --quick \
    --trace target/ci-trace/a.jsonl > target/ci-trace/a.txt
cargo run --release -q --bin repro -- trace --quick --serial \
    --trace target/ci-trace/b.jsonl > target/ci-trace/b.txt
cargo run --release -q --bin repro -- trace --quick \
    --trace target/ci-trace/a.chrome.json --trace-format chrome > /dev/null
PS_SWEEP_WORKERS=4 cargo run --release -q --bin repro -- trace --quick \
    --trace target/ci-trace/b.chrome.json --trace-format chrome > /dev/null
cargo run --release -q --bin trace_lint -- \
    target/ci-trace/a.jsonl target/ci-trace/b.jsonl
cargo run --release -q --bin trace_lint -- --chrome \
    target/ci-trace/a.chrome.json target/ci-trace/b.chrome.json
diff target/ci-trace/a.jsonl target/ci-trace/b.jsonl
diff target/ci-trace/a.chrome.json target/ci-trace/b.chrome.json
diff target/ci-trace/a.txt target/ci-trace/b.txt

echo "==> monitor smoke: repro monitor is clean, deterministic, and catches the seeded fault (offline)"
# The live-monitoring run must (a) report zero violations on the clean
# scenario (repro exits non-zero otherwise), (b) emit a valid JSON-lines
# load time series, byte-identical across invocations, and (c) detect the
# deliberately broken ordering layer under --fault.
rm -rf target/ci-monitor && mkdir -p target/ci-monitor
cargo run --release -q --bin repro -- monitor --quick \
    --series target/ci-monitor/a.jsonl > target/ci-monitor/a.txt
cargo run --release -q --bin repro -- monitor --quick \
    --series target/ci-monitor/b.jsonl > target/ci-monitor/b.txt
cargo run --release -q --bin trace_lint -- target/ci-monitor/a.jsonl
diff target/ci-monitor/a.jsonl target/ci-monitor/b.jsonl
diff target/ci-monitor/a.txt target/ci-monitor/b.txt
if cargo run --release -q --bin repro -- monitor --quick --fault \
    --postmortem target/ci-monitor/fault-pm.jsonl > target/ci-monitor/fault.txt; then
    echo "repro monitor --fault failed to detect the seeded total-order violation"
    exit 1
fi
grep -q total_order target/ci-monitor/fault.txt
cargo run --release -q --bin trace_lint -- target/ci-monitor/fault-pm.jsonl

echo "==> explain smoke: causal attribution is deterministic; the flight recorder fires only on failure (offline)"
# `repro explain` must (a) print a byte-identical per-phase critical-path
# attribution table across invocations, (b) write no post-mortem bundle
# on a clean run, and (c) under --fault write a bundle that contains the
# seeded violation's witness, passes trace_lint's causal validation, and
# is byte-identical across invocations.
rm -rf target/ci-explain && mkdir -p target/ci-explain
cargo run --release -q --bin repro -- explain --quick \
    --postmortem target/ci-explain/clean.jsonl > target/ci-explain/a.txt
cargo run --release -q --bin repro -- explain --quick \
    --postmortem target/ci-explain/clean.jsonl > target/ci-explain/b.txt
diff target/ci-explain/a.txt target/ci-explain/b.txt
grep -q "critical-path" target/ci-explain/a.txt
test ! -e target/ci-explain/clean.jsonl   # clean run: the recorder stays quiet
cargo run --release -q --bin repro -- explain --quick --fault \
    --postmortem target/ci-explain/pm-a.jsonl > /dev/null
cargo run --release -q --bin repro -- explain --quick --fault \
    --postmortem target/ci-explain/pm-b.jsonl > /dev/null
diff target/ci-explain/pm-a.jsonl target/ci-explain/pm-b.jsonl
diff target/ci-explain/pm-a.jsonl.chrome.json target/ci-explain/pm-b.jsonl.chrome.json
cargo run --release -q --bin trace_lint -- target/ci-explain/pm-a.jsonl
cargo run --release -q --bin trace_lint -- --chrome target/ci-explain/pm-a.jsonl.chrome.json
grep -q '"reason":"monitor_violation"' target/ci-explain/pm-a.jsonl
grep -q total_order target/ci-explain/pm-a.jsonl
grep -q app_deliver target/ci-explain/pm-a.jsonl   # the swapped delivery made the slice

echo "==> trace_lint negative check: corrupted causal links must fail the gate (offline)"
# Break one parent link in a real trace; trace_lint must exit non-zero.
sed '0,/"parent":0,"kind":"timer_fire"/s//"parent":987654321987,"kind":"timer_fire"/' \
    target/ci-trace/a.jsonl > target/ci-explain/corrupt.jsonl
if cargo run --release -q --bin trace_lint -- target/ci-explain/corrupt.jsonl \
    > /dev/null 2>&1; then
    echo "trace_lint accepted a dangling causal parent"
    exit 1
fi

echo "==> chaos smoke: repro chaos --quick passes its scenario matrix deterministically (offline)"
# The fault-injection matrix must pass clean (repro exits non-zero on any
# wedged switch or monitor violation) and render byte-identically across
# invocations and worker counts.
rm -rf target/ci-chaos && mkdir -p target/ci-chaos
cargo run --release -q --bin repro -- chaos --quick > target/ci-chaos/a.txt
PS_SWEEP_WORKERS=3 cargo run --release -q --bin repro -- chaos --quick > target/ci-chaos/b.txt
diff target/ci-chaos/a.txt target/ci-chaos/b.txt

echo "==> campaign smoke: repro campaign --quick runs the full grid deterministically (offline)"
# The judged campaign grid (profiles × stacks × faults) must pass clean
# (repro exits non-zero on any violation or wedged switch), render and
# emit manifests byte-identically across serial and parallel runs, write
# valid JSON-lines manifests, and fail under the seeded --fault cell.
rm -rf target/ci-campaign && mkdir -p target/ci-campaign
cargo run --release -q --bin repro -- campaign --quick \
    --manifests target/ci-campaign/a.manifests.jsonl > target/ci-campaign/a.txt
PS_SWEEP_WORKERS=4 cargo run --release -q --bin repro -- campaign --quick --serial \
    --manifests target/ci-campaign/b.manifests.jsonl > target/ci-campaign/b.txt
cargo run --release -q --bin trace_lint -- target/ci-campaign/a.manifests.jsonl
diff target/ci-campaign/a.txt target/ci-campaign/b.txt
diff target/ci-campaign/a.manifests.jsonl target/ci-campaign/b.manifests.jsonl
if cargo run --release -q --bin repro -- campaign --quick --fault > target/ci-campaign/fault.txt; then
    echo "repro campaign --fault failed to detect the seeded total-order violation"
    exit 1
fi
grep -q total_order target/ci-campaign/fault.txt

echo "==> multi-segment smoke: the campaign grid runs unchanged on a bridged topology (offline)"
# The same judged grid over 2 bridged Ethernet segments (SegmentedBus +
# router bridging) must still pass every cell and stay byte-deterministic
# across invocations.
cargo run --release -q --bin repro -- campaign --quick --topology segments:2 \
    > target/ci-campaign/seg2-a.txt
cargo run --release -q --bin repro -- campaign --quick --topology segments:2 \
    > target/ci-campaign/seg2-b.txt
diff target/ci-campaign/seg2-a.txt target/ci-campaign/seg2-b.txt

echo "==> profile smoke: repro profile attributes host time with a deterministic span structure (offline)"
# `repro profile` must (a) exit clean on the quick scenario, (b) keep the
# *structural* CSV columns (component, enters) byte-identical across
# invocations — the nanosecond columns and `#` note lines are host noise
# and are stripped before diffing — and (c) write a collapsed-stack
# flamegraph whose every line parses as `frame;frame;... self_ns`.
rm -rf target/ci-profile && mkdir -p target/ci-profile
cargo run --release -q --bin repro -- profile --quick --csv \
    --flame target/ci-profile/a.flame > target/ci-profile/a.csv
cargo run --release -q --bin repro -- profile --quick --csv \
    --flame target/ci-profile/b.flame > target/ci-profile/b.csv
grep -v '^#' target/ci-profile/a.csv | cut -d, -f1,2 > target/ci-profile/a.structure
grep -v '^#' target/ci-profile/b.csv | cut -d, -f1,2 > target/ci-profile/b.structure
diff target/ci-profile/a.structure target/ci-profile/b.structure
grep -q '^engine/dispatch,' target/ci-profile/a.csv
grep -q '^stack/' target/ci-profile/a.csv
test -s target/ci-profile/a.flame
awk 'NF < 2 || $NF !~ /^[0-9]+$/ { exit 1 }' target/ci-profile/a.flame

echo "==> ledger smoke: repro runs append self-describing rows that ledger_check accepts (offline)"
# Two same-config monitor runs append two rows to one ledger (append, not
# truncate); rows carry the ps-ledger shape; and ledger_check --strict
# finds no drift between two independently recorded ledgers. A profile
# row rides along to prove the profile summary embeds.
rm -rf target/ci-ledger && mkdir -p target/ci-ledger
cargo run --release -q --bin repro -- monitor --quick \
    --ledger target/ci-ledger/a.jsonl > /dev/null
cargo run --release -q --bin repro -- monitor --quick \
    --ledger target/ci-ledger/a.jsonl > /dev/null
test "$(wc -l < target/ci-ledger/a.jsonl)" -eq 2
grep -q '"kind":"ps-ledger"' target/ci-ledger/a.jsonl
cargo run --release -q --bin repro -- monitor --quick \
    --ledger target/ci-ledger/b.jsonl > /dev/null
cargo run --release -q --bin ledger_check -- \
    target/ci-ledger/a.jsonl target/ci-ledger/b.jsonl --strict
cargo run --release -q --bin repro -- profile --quick \
    --ledger target/ci-ledger/profile.jsonl > /dev/null
grep -q '"profile":{"kind":"ps-prof"' target/ci-ledger/profile.jsonl

echo "==> real-transport smoke: the same stacks over UDP loopback agree with simnet (offline)"
# `repro real` runs unmodified stacks over real UDP sockets between OS
# threads. The gate: (a) the quick loopback run exits 0 (repro exits
# non-zero on any monitor violation), (b) the --compare report's
# deterministic core — everything except rows marked "(wall)", which
# carry wall-clock timings — is identical across two full sim-vs-real
# runs, (c) both emitted traces pass trace_lint including causal-link
# validation, and (d) the simnet-side trace is byte-identical across
# runs (the recorder schema is shared; only the real side may jitter).
rm -rf target/ci-real && mkdir -p target/ci-real
cargo run --release -q --bin repro -- real --quick > /dev/null
cargo run --release -q --bin repro -- real --quick --compare \
    --trace-sim target/ci-real/sim-a.jsonl \
    --trace-real target/ci-real/real-a.jsonl > target/ci-real/a.txt
cargo run --release -q --bin repro -- real --quick --compare \
    --trace-sim target/ci-real/sim-b.jsonl \
    --trace-real target/ci-real/real-b.jsonl > target/ci-real/b.txt
grep -v '(wall)' target/ci-real/a.txt > target/ci-real/a.det
grep -v '(wall)' target/ci-real/b.txt > target/ci-real/b.det
diff target/ci-real/a.det target/ci-real/b.det
cargo run --release -q --bin trace_lint -- \
    target/ci-real/sim-a.jsonl target/ci-real/real-a.jsonl
diff target/ci-real/sim-a.jsonl target/ci-real/sim-b.jsonl

echo "==> cargo doc --no-deps with warnings denied (offline)"
# ps-obs and ps-core carry #![deny(missing_docs)]; this gate extends the
# no-warning bar to every rustdoc lint across the workspace.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "ci: all gates green"
