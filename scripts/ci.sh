#!/usr/bin/env bash
# Pre-merge gate. Everything runs with CARGO_NET_OFFLINE=true: the
# workspace has zero external crate dependencies, and this is how we keep
# it that way — any reintroduced registry dependency fails the build here
# before it can land.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release (offline)"
cargo build --release

echo "==> cargo test (offline)"
cargo test -q

echo "==> cargo bench --no-run (offline)"
cargo bench --workspace --no-run

echo "==> engine_throughput smoke run (1 warmup + 1 iter, offline)"
# A real (if statistically meaningless) run: catches engine regressions
# that only show up at bench scale, and proves the BENCH_engine.json
# emission path works. Written under target/ so the committed baseline
# stays pristine; refresh that baseline with more iters (see
# EXPERIMENTS.md) when engine performance changes intentionally.
rm -f target/BENCH_engine.json
PS_BENCH_ITERS=1 PS_BENCH_WARMUP=1 PS_BENCH_OUT="$(pwd)/target/BENCH_engine.json" \
    cargo bench --bench engine_throughput
test -s target/BENCH_engine.json

echo "==> trace smoke: repro --trace emits valid, reproducible files (offline)"
# The instrumented repro run must (a) produce traces that parse as JSON in
# both formats, and (b) be byte-identical across same-seed invocations,
# serial and parallel — the recorder may not perturb determinism.
rm -rf target/ci-trace && mkdir -p target/ci-trace
cargo run --release -q --bin repro -- trace --quick \
    --trace target/ci-trace/a.jsonl > target/ci-trace/a.txt
cargo run --release -q --bin repro -- trace --quick --serial \
    --trace target/ci-trace/b.jsonl > target/ci-trace/b.txt
cargo run --release -q --bin repro -- trace --quick \
    --trace target/ci-trace/a.chrome.json --trace-format chrome > /dev/null
PS_SWEEP_WORKERS=4 cargo run --release -q --bin repro -- trace --quick \
    --trace target/ci-trace/b.chrome.json --trace-format chrome > /dev/null
cargo run --release -q --bin trace_lint -- \
    target/ci-trace/a.jsonl target/ci-trace/b.jsonl
cargo run --release -q --bin trace_lint -- --chrome \
    target/ci-trace/a.chrome.json target/ci-trace/b.chrome.json
diff target/ci-trace/a.jsonl target/ci-trace/b.jsonl
diff target/ci-trace/a.chrome.json target/ci-trace/b.chrome.json
diff target/ci-trace/a.txt target/ci-trace/b.txt

echo "ci: all gates green"
