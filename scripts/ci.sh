#!/usr/bin/env bash
# Pre-merge gate. Everything runs with CARGO_NET_OFFLINE=true: the
# workspace has zero external crate dependencies, and this is how we keep
# it that way — any reintroduced registry dependency fails the build here
# before it can land.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release (offline)"
cargo build --release

echo "==> cargo test (offline)"
cargo test -q

echo "==> cargo bench --no-run (offline)"
cargo bench --workspace --no-run

echo "==> engine_throughput smoke run (1 warmup + 1 iter, offline)"
# A real (if statistically meaningless) run: catches engine regressions
# that only show up at bench scale, and proves the BENCH_engine.json
# emission path works. Written under target/ so the committed baseline
# stays pristine; refresh that baseline with more iters (see
# EXPERIMENTS.md) when engine performance changes intentionally.
rm -f target/BENCH_engine.json
PS_BENCH_ITERS=1 PS_BENCH_WARMUP=1 PS_BENCH_OUT="$(pwd)/target/BENCH_engine.json" \
    cargo bench --bench engine_throughput
test -s target/BENCH_engine.json

echo "ci: all gates green"
