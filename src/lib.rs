//! # protocol-switching
//!
//! A from-scratch Rust reproduction of *"Protocol Switching: Exploiting
//! Meta-Properties"* (Liu, van Renesse, Bickford, Kreitz, Constable —
//! WARGC/ICDCS-W 2001): a generic layer that hot-swaps between group
//! communication protocols at run time, plus the executable version of the
//! paper's meta-property theory that says exactly *which* communication
//! properties survive the swap.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`switch`] | `ps-core` | the switching protocol (broadcast & token-ring variants), oracles, hybrids |
//! | [`protocols`] | `ps-protocols` | FIFO, reliable, sequencer/token total order, integrity, confidentiality, no-replay, priority, Amoeba, virtual synchrony |
//! | [`stack`] | `ps-stack` | Horus-style layer composition and the group runtime |
//! | [`trace`] | `ps-trace` | traces, the Table-1 properties, the six meta-properties, the Table-2 checker |
//! | [`simnet`] | `ps-simnet` | deterministic discrete-event network simulator (shared-Ethernet model, fault injection) |
//! | [`wire`] | `ps-wire` | binary codec and header framing |
//! | [`rt`] | `ps-rt` | real-time runtime: the same stacks on OS threads |
//! | [`net`] | `ps-net` | real transport: the same stacks over UDP loopback sockets, recorded for sim-vs-real diffing |
//! | [`obs`] | `ps-obs` | structured tracing: ring-buffer recorder, latency histograms, JSON-lines / Chrome-trace exporters |
//! | [`prof`] | `ps-prof` | in-engine host-time profiler: RAII span stacks, cost tables, collapsed-stack flamegraphs |
//! | [`workload`] | `ps-workload` | seeded traffic-profile generator: typed profiles, deterministic schedules, byte-stable manifests |
//! | [`harness`] | `ps-harness` | the experiments regenerating every table and figure |
//!
//! ## Quickstart
//!
//! ```
//! use protocol_switching::prelude::*;
//!
//! // A five-member group running the paper's hybrid total order:
//! // sequencer-based at first, switching to token-based at t = 50 ms.
//! let mut builder = GroupSimBuilder::new(5)
//!     .seed(7)
//!     .medium(Box::new(PointToPoint::new(SimTime::from_micros(300))))
//!     .stack_factory(|p, _, ids| {
//!         let oracle: Box<dyn Oracle> = if p == ProcessId(0) {
//!             Box::new(ManualOracle::new(vec![(SimTime::from_millis(50), 1)]))
//!         } else {
//!             Box::new(NeverOracle)
//!         };
//!         hybrid_total_order(ids, SwitchConfig::default(), ProcessId(0), oracle).0
//!     });
//! for i in 0..20u64 {
//!     builder = builder.send_at(
//!         SimTime::from_millis(2 + 5 * i),
//!         ProcessId((i % 5) as u16),
//!         format!("msg-{i}"),
//!     );
//! }
//! let mut sim = builder.build();
//! sim.run_until(SimTime::from_secs(2));
//!
//! // The application-level trace survives the switch totally ordered.
//! assert!(TotalOrder.holds(&sim.app_trace()));
//! ```

pub use ps_core as switch;
pub use ps_harness as harness;
pub use ps_net as net;
pub use ps_obs as obs;
pub use ps_prof as prof;
pub use ps_protocols as protocols;
pub use ps_rt as rt;
pub use ps_simnet as simnet;
pub use ps_stack as stack;
pub use ps_trace as trace;
pub use ps_wire as wire;
pub use ps_workload as workload;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use ps_core::{
        hybrid_total_order, hybrid_total_order_ft, ManualOracle, NeverOracle, Oracle, SwitchConfig,
        SwitchHandle, SwitchLayer, SwitchVariant, ThresholdOracle,
    };
    pub use ps_protocols::{
        AmoebaLayer, CausalOrderLayer, ConfidentialityLayer, CreditControlLayer, FifoLayer,
        IntegrityLayer, NoReplayLayer, PriorityLayer, RateControlLayer, ReliableLayer,
        SeqOrderLayer, TokenOrderLayer, VsyncConfig, VsyncLayer,
    };
    pub use ps_simnet::{
        Dest, DetRng, EthernetConfig, Lossy, Medium, NodeId, Packet, PartitionSchedule,
        Partitioned, PointToPoint, SharedBus, SimConfig, SimTime, TimedPartition,
    };
    pub use ps_stack::{
        Cast, ChannelId, Driver, Frame, GroupSim, GroupSimBuilder, GroupSpec, IdGen, Layer,
        LayerCtx, Stack, StackEnv, TapLayer, TapLog,
    };
    pub use ps_trace::props::{
        standard_suite, Amoeba, CausalOrder, Confidentiality, Integrity, NoReplay,
        PrioritizedDelivery, Property, Reliability, TotalOrder, VirtualSynchrony,
    };
    pub use ps_trace::{Event, Message, MsgId, ProcessId, Trace};
}
